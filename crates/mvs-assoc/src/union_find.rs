//! Disjoint-set forest with path compression and union by rank.

/// A union-find over `0..n` elements.
///
/// # Examples
///
/// ```
/// use mvs_assoc::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 2);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 3));
/// assert!(!uf.connected(0, 1));
/// assert_eq!(uf.groups().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The sets as sorted member lists (deterministic order: by smallest
    /// member).
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(3);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.groups(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn union_merges_and_reports() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0)); // already merged
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.groups(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(2, 3));
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert!(uf.connected(0, n - 1));
        assert_eq!(uf.groups().len(), 1);
    }

    #[test]
    fn empty_is_fine() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.groups().is_empty());
    }
}
