//! Unit tests for the Hungarian solver on the shapes the pipeline actually
//! feeds it: rectangular matrices (tracks vs detections rarely match in
//! count), tied costs, and degenerate all-equal matrices.

use mvs_ml::{hungarian, hungarian_max, MlError};

/// Brute-force minimum over all row→column injections of a (possibly
/// rectangular) matrix — the ground truth for small instances.
fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
    fn rec(cost: &[Vec<f64>], row: usize, skips_left: usize, used: &mut Vec<bool>) -> f64 {
        if row == cost.len() {
            return 0.0;
        }
        // More rows than columns: up to `rows - cols` rows stay unassigned
        // (the matching still has exactly min(r, c) pairs).
        let mut best = if skips_left > 0 {
            rec(cost, row + 1, skips_left - 1, used)
        } else {
            f64::INFINITY
        };
        for col in 0..used.len() {
            if !used[col] {
                used[col] = true;
                best = best.min(cost[row][col] + rec(cost, row + 1, skips_left, used));
                used[col] = false;
            }
        }
        best
    }
    let cols = cost.first().map_or(0, Vec::len);
    let skips = cost.len().saturating_sub(cols);
    rec(cost, 0, skips, &mut vec![false; cols])
}

fn assert_valid_matching(pairs: &[Option<usize>], rows: usize, cols: usize) {
    assert_eq!(pairs.len(), rows);
    let assigned: Vec<usize> = pairs.iter().filter_map(|&c| c).collect();
    assert_eq!(
        assigned.len(),
        rows.min(cols),
        "expected min(r, c) pairs, got {assigned:?}"
    );
    let mut seen = vec![false; cols];
    for &c in &assigned {
        assert!(c < cols, "column {c} out of range");
        assert!(!seen[c], "column {c} assigned twice");
        seen[c] = true;
    }
}

#[test]
fn wide_matrix_assigns_every_row() {
    // 2 tracks, 4 detections: both tracks match, two detections stay free.
    let cost = vec![vec![9.0, 2.0, 7.0, 8.0], vec![6.0, 4.0, 3.0, 7.0]];
    let a = hungarian(&cost).unwrap();
    assert_valid_matching(&a.pairs, 2, 4);
    assert_eq!(a.total, brute_force_min(&cost));
    assert_eq!(a.total, 5.0); // 2 + 3
}

#[test]
fn tall_matrix_leaves_extra_rows_unassigned() {
    // 4 tracks, 2 detections: exactly two tracks match.
    let cost = vec![
        vec![5.0, 9.0],
        vec![1.0, 4.0],
        vec![8.0, 2.0],
        vec![7.0, 7.0],
    ];
    let a = hungarian(&cost).unwrap();
    assert_valid_matching(&a.pairs, 4, 2);
    assert_eq!(a.total, brute_force_min(&cost));
    assert_eq!(a.total, 3.0); // 1 + 2
    assert_eq!(a.pairs[3], None, "the dominated row stays unmatched");
}

#[test]
fn tall_matrix_skips_expensive_rows_not_just_trailing_ones() {
    // The cheap rows are at the bottom; padding must not blindly keep the
    // first `cols` rows.
    let cost = vec![vec![100.0, 100.0], vec![90.0, 95.0], vec![1.0, 2.0]];
    let a = hungarian(&cost).unwrap();
    assert_valid_matching(&a.pairs, 3, 2);
    assert_eq!(a.total, brute_force_min(&cost));
    assert_eq!(a.total, 92.0); // row 1 on column 0, row 2 on column 1
    assert_eq!(a.pairs[0], None, "the expensive leading row is skipped");
}

#[test]
fn tied_costs_still_produce_an_optimal_permutation() {
    // Two optimal matchings exist (swap rows 0/1); either is acceptable,
    // but the total is unique.
    let cost = vec![
        vec![1.0, 1.0, 5.0],
        vec![1.0, 1.0, 5.0],
        vec![5.0, 5.0, 2.0],
    ];
    let a = hungarian(&cost).unwrap();
    assert_valid_matching(&a.pairs, 3, 3);
    assert_eq!(a.total, 4.0);
    assert_eq!(a.total, brute_force_min(&cost));
}

#[test]
fn all_equal_costs_yield_a_full_matching_at_fixed_total() {
    let cost = vec![vec![3.5; 4]; 4];
    let a = hungarian(&cost).unwrap();
    assert_valid_matching(&a.pairs, 4, 4);
    assert_eq!(a.total, 14.0);
}

#[test]
fn all_equal_rectangular_costs() {
    let cost = vec![vec![2.0; 5]; 3];
    let a = hungarian(&cost).unwrap();
    assert_valid_matching(&a.pairs, 3, 5);
    assert_eq!(a.total, 6.0);
}

#[test]
fn maximization_mirrors_minimization() {
    let score = vec![
        vec![4.0, 1.0, 3.0],
        vec![2.0, 0.0, 5.0],
        vec![3.0, 2.0, 2.0],
    ];
    let a = hungarian_max(&score).unwrap();
    assert_valid_matching(&a.pairs, 3, 3);
    assert_eq!(a.total, 11.0); // 4 + 5 + 2
    let negated: Vec<Vec<f64>> = score
        .iter()
        .map(|r| r.iter().map(|&v| -v).collect())
        .collect();
    assert_eq!(a.total, -brute_force_min(&negated));
}

#[test]
fn rectangular_max_prefers_the_large_entries() {
    let score = vec![vec![0.1, 0.9, 0.2], vec![0.8, 0.3, 0.4]];
    let a = hungarian_max(&score).unwrap();
    assert_valid_matching(&a.pairs, 2, 3);
    assert_eq!(a.pairs[0], Some(1));
    assert_eq!(a.pairs[1], Some(0));
    assert!((a.total - 1.7).abs() < 1e-12);
}

#[test]
fn empty_and_degenerate_shapes() {
    let empty: Vec<Vec<f64>> = Vec::new();
    let a = hungarian(&empty).unwrap();
    assert!(a.pairs.is_empty());
    assert_eq!(a.total, 0.0);

    let no_cols = vec![Vec::new(), Vec::new()];
    let a = hungarian(&no_cols).unwrap();
    assert_eq!(a.pairs, vec![None, None]);
    assert_eq!(a.total, 0.0);
}

#[test]
fn ragged_and_non_finite_inputs_are_rejected() {
    let ragged = vec![vec![1.0, 2.0], vec![3.0]];
    assert!(matches!(
        hungarian(&ragged),
        Err(MlError::DimensionMismatch { .. })
    ));
    let nan = vec![vec![1.0, f64::NAN]];
    assert!(matches!(hungarian(&nan), Err(MlError::InvalidParameter(_))));
}
