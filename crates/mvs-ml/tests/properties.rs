//! Property-based tests for the ML toolbox.

use mvs_ml::{
    hungarian, hungarian_max, Classifier, KnnClassifier, KnnRegressor, LinearRegression, Matrix,
    Regressor,
};
use proptest::prelude::*;

fn arb_cost_matrix(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0f64..10.0, n), n)
}

fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
    fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
        if row == cost.len() {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for col in 0..cost.len() {
            if !used[col] {
                used[col] = true;
                best = best.min(cost[row][col] + rec(cost, row + 1, used));
                used[col] = false;
            }
        }
        best
    }
    rec(cost, 0, &mut vec![false; cost.len()])
}

proptest! {
    #[test]
    fn hungarian_matches_brute_force(cost in arb_cost_matrix(4)) {
        let a = hungarian(&cost).expect("finite costs");
        let best = brute_force_min(&cost);
        prop_assert!((a.total - best).abs() < 1e-9, "hungarian {} vs brute {}", a.total, best);
    }

    #[test]
    fn hungarian_assignment_is_a_matching(cost in arb_cost_matrix(5)) {
        let a = hungarian(&cost).expect("finite costs");
        let mut cols: Vec<usize> = a.pairs.iter().filter_map(|c| *c).collect();
        let before = cols.len();
        cols.sort_unstable();
        cols.dedup();
        prop_assert_eq!(cols.len(), before, "columns must be distinct");
        prop_assert_eq!(before, 5, "square matrices yield perfect matchings");
    }

    #[test]
    fn hungarian_max_equals_negated_min(cost in arb_cost_matrix(4)) {
        let max = hungarian_max(&cost).expect("finite costs");
        let neg: Vec<Vec<f64>> = cost.iter().map(|r| r.iter().map(|v| -v).collect()).collect();
        let min = hungarian(&neg).expect("finite costs");
        prop_assert!((max.total + min.total).abs() < 1e-9);
    }

    #[test]
    fn knn_classifier_memorizes_training_points(
        points in prop::collection::vec(((-100.0f64..100.0), (-100.0f64..100.0)), 4..30),
    ) {
        // Deduplicate locations so each point has an unambiguous label.
        let mut seen: Vec<(f64, f64)> = Vec::new();
        for p in &points {
            if !seen.iter().any(|q| (q.0 - p.0).abs() < 1.0 && (q.1 - p.1).abs() < 1.0) {
                seen.push(*p);
            }
        }
        prop_assume!(seen.len() >= 2);
        let xs: Vec<Vec<f64>> = seen.iter().map(|&(x, y)| vec![x, y]).collect();
        let ys: Vec<usize> = (0..seen.len()).map(|i| i % 2).collect();
        let model = KnnClassifier::fit(1, &xs, &ys).expect("valid training data");
        for (x, &y) in xs.iter().zip(&ys) {
            prop_assert_eq!(model.predict(x), y);
        }
    }

    #[test]
    fn knn_regressor_prediction_is_within_target_hull(
        targets in prop::collection::vec(-50.0f64..50.0, 3..20),
    ) {
        let xs: Vec<Vec<f64>> = (0..targets.len()).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = targets.iter().map(|&t| vec![t]).collect();
        let model = KnnRegressor::fit(3, &xs, &ys).expect("valid training data");
        let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for q in [-5.0, 0.5, targets.len() as f64 + 3.0] {
            let p = model.predict(&[q])[0];
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9,
                "prediction {p} outside hull [{lo}, {hi}]");
        }
    }

    #[test]
    fn linear_regression_recovers_exact_affine_maps(
        w0 in -5.0f64..5.0,
        w1 in -5.0f64..5.0,
        b in -10.0f64..10.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64])
            .collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![w0 * x[0] + w1 * x[1] + b]).collect();
        let model = LinearRegression::fit(&xs, &ys).expect("well-posed");
        let probe = vec![7.0, -3.0];
        let expected = w0 * 7.0 + w1 * -3.0 + b;
        prop_assert!((model.predict(&probe)[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn matrix_solve_inverts_matvec(
        rows in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3), 3),
        x in prop::collection::vec(-10.0f64..10.0, 3),
    ) {
        let a = Matrix::from_rows(&rows).expect("well-formed");
        let b = a.matvec(&x).expect("dimensions match");
        // Singular matrices legitimately fail; otherwise solve must invert.
        if let Ok(solved) = a.solve(&b) {
            let again = a.matvec(&solved).expect("dimensions match");
            for (u, v) in again.iter().zip(&b) {
                prop_assert!((u - v).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn transpose_is_involutive(
        rows in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 4), 2),
    ) {
        let a = Matrix::from_rows(&rows).expect("well-formed");
        prop_assert_eq!(a.transpose().transpose(), a);
    }
}
