//! The Hungarian (Kuhn–Munkres) assignment algorithm.
//!
//! Used twice in the paper's pipeline: to associate detected bounding boxes
//! with tracked-object predictions inside one camera (tracking-by-detection)
//! and to match predicted cross-camera locations with actual detections in
//! the target camera (Sec. II-C, step 3).

use crate::MlError;

/// Result of an assignment problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `pairs[r]` is the column assigned to row `r`, or `None` when the row
    /// is unassigned (possible for rectangular problems).
    pub pairs: Vec<Option<usize>>,
    /// Total cost (or score, for maximization) of the assigned pairs.
    pub total: f64,
}

impl Assignment {
    /// Iterates over the `(row, col)` pairs of the matching.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pairs
            .iter()
            .enumerate()
            .filter_map(|(r, c)| c.map(|c| (r, c)))
    }
}

/// Solves the minimum-cost assignment problem on a (possibly rectangular)
/// cost matrix given as `rows × cols` row slices.
///
/// With `r` rows and `c` columns, `min(r, c)` pairs are produced; every cost
/// must be finite.
///
/// # Errors
///
/// Returns [`MlError::DimensionMismatch`] for ragged input and
/// [`MlError::InvalidParameter`] if any cost is not finite. An empty matrix
/// yields an empty assignment.
///
/// # Examples
///
/// ```
/// let cost = vec![
///     vec![4.0, 1.0, 3.0],
///     vec![2.0, 0.0, 5.0],
///     vec![3.0, 2.0, 2.0],
/// ];
/// let a = mvs_ml::hungarian(&cost)?;
/// assert_eq!(a.total, 5.0); // 1 + 2 + 2
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
pub fn hungarian(cost: &[Vec<f64>]) -> Result<Assignment, MlError> {
    solve(cost, false)
}

/// Solves the *maximum*-score assignment problem (e.g. maximize summed IoU
/// proximity between predictions and detections).
///
/// # Errors
///
/// Same conditions as [`hungarian`].
pub fn hungarian_max(score: &[Vec<f64>]) -> Result<Assignment, MlError> {
    solve(score, true)
}

fn solve(input: &[Vec<f64>], maximize: bool) -> Result<Assignment, MlError> {
    let rows = input.len();
    if rows == 0 {
        return Ok(Assignment {
            pairs: Vec::new(),
            total: 0.0,
        });
    }
    let cols = input[0].len();
    for r in input {
        if r.len() != cols {
            return Err(MlError::DimensionMismatch {
                expected: cols,
                found: r.len(),
            });
        }
        if r.iter().any(|v| !v.is_finite()) {
            return Err(MlError::InvalidParameter("costs must be finite"));
        }
    }
    if cols == 0 {
        return Ok(Assignment {
            pairs: vec![None; rows],
            total: 0.0,
        });
    }

    // Pad to a square matrix with zero-cost dummy entries; dummy pairings are
    // stripped from the result.
    let n = rows.max(cols);
    let sign = if maximize { -1.0 } else { 1.0 };
    let mut a = vec![vec![0.0; n + 1]; n + 1]; // 1-indexed
    for (i, row) in input.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            a[i + 1][j + 1] = sign * v;
        }
    }

    // Jonker-style O(n³) potentials implementation of Kuhn–Munkres.
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = a[i0][j] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut pairs = vec![None; rows];
    let mut total = 0.0;
    for j in 1..=n {
        let i = p[j];
        if i >= 1 && i <= rows && j <= cols {
            pairs[i - 1] = Some(j - 1);
            total += input[i - 1][j - 1];
        }
    }
    Ok(Assignment { pairs, total })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_minimization() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = hungarian(&cost).unwrap();
        assert_eq!(a.total, 5.0);
        // All rows assigned to distinct columns.
        let mut cols: Vec<usize> = a.pairs.iter().map(|c| c.unwrap()).collect();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2]);
    }

    #[test]
    fn maximization_flips_objective() {
        let score = vec![vec![0.9, 0.1], vec![0.8, 0.2]];
        let a = hungarian_max(&score).unwrap();
        // 0.9 + 0.2 beats 0.1 + 0.8.
        assert!((a.total - 1.1).abs() < 1e-12);
        assert_eq!(a.pairs, vec![Some(0), Some(1)]);
    }

    #[test]
    fn rectangular_more_rows_than_cols() {
        let cost = vec![vec![1.0], vec![0.5], vec![2.0]];
        let a = hungarian(&cost).unwrap();
        // Only one real column: cheapest row gets it.
        assert_eq!(a.pairs.iter().filter(|c| c.is_some()).count(), 1);
        assert_eq!(a.pairs[1], Some(0));
        assert_eq!(a.total, 0.5);
    }

    #[test]
    fn rectangular_more_cols_than_rows() {
        let cost = vec![vec![3.0, 1.0, 2.0]];
        let a = hungarian(&cost).unwrap();
        assert_eq!(a.pairs, vec![Some(1)]);
        assert_eq!(a.total, 1.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(hungarian(&[]).unwrap().pairs.len(), 0);
        let a = hungarian(&[vec![], vec![]]).unwrap();
        assert_eq!(a.pairs, vec![None, None]);
    }

    #[test]
    fn identity_matrix_prefers_diagonal_zeros() {
        // Cost 0 on the diagonal, 1 elsewhere.
        let n = 5;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { 1.0 }).collect())
            .collect();
        let a = hungarian(&cost).unwrap();
        assert_eq!(a.total, 0.0);
        for (r, c) in a.iter() {
            assert_eq!(r, c);
        }
    }

    #[test]
    fn negative_costs_are_fine() {
        let cost = vec![vec![-5.0, 0.0], vec![0.0, -5.0]];
        let a = hungarian(&cost).unwrap();
        assert_eq!(a.total, -10.0);
    }

    #[test]
    fn rejects_non_finite_and_ragged() {
        assert!(hungarian(&[vec![f64::NAN]]).is_err());
        assert!(hungarian(&[vec![1.0, 2.0], vec![1.0]]).is_err());
    }

    #[test]
    fn brute_force_agreement_small() {
        // Compare against exhaustive search on all 4x4 permutations.
        let cost = vec![
            vec![7.0, 3.0, 6.0, 9.0],
            vec![2.0, 8.0, 4.0, 9.0],
            vec![6.0, 2.0, 2.0, 2.0],
            vec![1.0, 7.0, 5.0, 8.0],
        ];
        let a = hungarian(&cost).unwrap();
        let mut best = f64::INFINITY;
        let perms = permutations(4);
        for p in perms {
            let t: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            best = best.min(t);
        }
        assert_eq!(a.total, best);
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 1 {
            return vec![vec![0]];
        }
        let mut out = Vec::new();
        for p in permutations(n - 1) {
            for i in 0..n {
                let mut q: Vec<usize> = p.iter().map(|&x| if x >= i { x + 1 } else { x }).collect();
                q.insert(0, i);
                out.push(q);
            }
        }
        out
    }
}
