//! Dataset utilities: splits and feature standardization.

use crate::MlError;

/// Splits paired features/targets into a train and a test portion.
///
/// The first `train_fraction` of the rows become the training set — this
/// mirrors the paper's protocol of training on the first half of each video
/// and testing on the second half (a *temporal* split; shuffling would leak
/// future frames into training).
///
/// # Errors
///
/// Returns [`MlError::DimensionMismatch`] when `xs` and `ys` differ in
/// length and [`MlError::InvalidParameter`] when the fraction is outside
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// let xs = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
/// let ys = vec![1.0, 2.0, 3.0, 4.0];
/// let (xtr, ytr, xte, yte) = mvs_ml::train_test_split(&xs, &ys, 0.5)?;
/// assert_eq!(xtr.len(), 2);
/// assert_eq!(yte, vec![3.0, 4.0]);
/// # let _ = (ytr, xte);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
#[allow(clippy::type_complexity)]
pub fn train_test_split<X: Clone, Y: Clone>(
    xs: &[X],
    ys: &[Y],
    train_fraction: f64,
) -> Result<(Vec<X>, Vec<Y>, Vec<X>, Vec<Y>), MlError> {
    if xs.len() != ys.len() {
        return Err(MlError::DimensionMismatch {
            expected: xs.len(),
            found: ys.len(),
        });
    }
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(MlError::InvalidParameter("train_fraction must be in (0,1)"));
    }
    let cut = ((xs.len() as f64) * train_fraction).round() as usize;
    let cut = cut.clamp(1, xs.len().saturating_sub(1).max(1));
    Ok((
        xs[..cut].to_vec(),
        ys[..cut].to_vec(),
        xs[cut..].to_vec(),
        ys[cut..].to_vec(),
    ))
}

/// Per-feature standardization (zero mean, unit variance).
///
/// Gradient-based baselines (logistic regression, the linear SVM) need
/// standardized pixel-coordinate features to converge; KNN and trees do not
/// care. Fitted on the training split only.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits the standardizer on training rows.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] for empty input and
    /// [`MlError::DimensionMismatch`] for ragged rows.
    pub fn fit(xs: &[Vec<f64>]) -> Result<Self, MlError> {
        let Some(first) = xs.first() else {
            return Err(MlError::EmptyTrainingSet);
        };
        let d = first.len();
        let mut mean = vec![0.0; d];
        for x in xs {
            if x.len() != d {
                return Err(MlError::DimensionMismatch {
                    expected: d,
                    found: x.len(),
                });
            }
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        let n = xs.len() as f64;
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for x in xs {
            for ((v, m), xi) in var.iter_mut().zip(&mean).zip(x) {
                let dlt = xi - m;
                *v += dlt * dlt;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0 // constant feature: leave it centred but unscaled
                }
            })
            .collect();
        Ok(Standardizer { mean, std })
    }

    /// Standardizes one row.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "feature dimension mismatch");
        x.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((xi, m), s)| (xi - m) / s)
            .collect()
    }

    /// Standardizes a batch of rows.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_temporal_prefix() {
        let xs: Vec<u32> = (0..10).collect();
        let ys: Vec<u32> = (10..20).collect();
        let (xtr, ytr, xte, yte) = train_test_split(&xs, &ys, 0.7).unwrap();
        assert_eq!(xtr, (0..7).collect::<Vec<_>>());
        assert_eq!(ytr, (10..17).collect::<Vec<_>>());
        assert_eq!(xte, (7..10).collect::<Vec<_>>());
        assert_eq!(yte, (17..20).collect::<Vec<_>>());
    }

    #[test]
    fn split_validates() {
        let xs = vec![1, 2, 3];
        assert!(train_test_split(&xs, &[1, 2], 0.5).is_err());
        assert!(train_test_split(&xs, &xs, 0.0).is_err());
        assert!(train_test_split(&xs, &xs, 1.0).is_err());
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let xs = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Standardizer::fit(&xs).unwrap();
        let t = s.transform_batch(&xs);
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        // Constant feature is centred but not exploded.
        assert!(t.iter().all(|r| r[1].abs() < 1e-12));
    }

    #[test]
    fn standardizer_rejects_empty() {
        assert_eq!(Standardizer::fit(&[]), Err(MlError::EmptyTrainingSet));
    }
}
