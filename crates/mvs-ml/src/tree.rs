//! CART decision-tree classifier (classification baseline).

use crate::{Classifier, MlError};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 8,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A binary CART classifier using Gini impurity.
///
/// Axis-aligned splits; `<= threshold` goes left. Deterministic given the
/// training data.
///
/// # Examples
///
/// ```
/// use mvs_ml::{Classifier, DecisionTree, DecisionTreeConfig};
///
/// let xs = vec![vec![1.0, 0.0], vec![2.0, 0.0], vec![8.0, 0.0], vec![9.0, 0.0]];
/// let ys = vec![0, 0, 1, 1];
/// let tree = DecisionTree::fit(DecisionTreeConfig::default(), &xs, &ys)?;
/// assert_eq!(tree.predict(&[1.5, 0.0]), 0);
/// assert_eq!(tree.predict(&[8.5, 0.0]), 1);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    depth: usize,
}

impl DecisionTree {
    /// Grows a tree on the training data.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`]
    /// for malformed input.
    pub fn fit(config: DecisionTreeConfig, xs: &[Vec<f64>], ys: &[usize]) -> Result<Self, MlError> {
        let Some(first) = xs.first() else {
            return Err(MlError::EmptyTrainingSet);
        };
        let d = first.len();
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        for x in xs {
            if x.len() != d {
                return Err(MlError::DimensionMismatch {
                    expected: d,
                    found: x.len(),
                });
            }
        }
        let indices: Vec<usize> = (0..xs.len()).collect();
        let (root, depth) = grow(xs, ys, &indices, 0, &config);
        Ok(DecisionTree { root, depth })
    }

    /// Depth actually reached while growing.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, x: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

/// Majority label among the indexed samples (ties to lower label).
fn majority(ys: &[usize], idx: &[usize]) -> usize {
    let mut counts: Vec<(usize, usize)> = Vec::new();
    for &i in idx {
        match counts.iter_mut().find(|(l, _)| *l == ys[i]) {
            Some((_, c)) => *c += 1,
            None => counts.push((ys[i], 1)),
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(l, _)| l)
        .unwrap_or(0)
}

fn gini(ys: &[usize], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let mut counts: Vec<(usize, usize)> = Vec::new();
    for &i in idx {
        match counts.iter_mut().find(|(l, _)| *l == ys[i]) {
            Some((_, c)) => *c += 1,
            None => counts.push((ys[i], 1)),
        }
    }
    let n = idx.len() as f64;
    1.0 - counts
        .into_iter()
        .map(|(_, c)| {
            let p = c as f64 / n;
            p * p
        })
        .sum::<f64>()
}

fn grow(
    xs: &[Vec<f64>],
    ys: &[usize],
    idx: &[usize],
    depth: usize,
    config: &DecisionTreeConfig,
) -> (Node, usize) {
    let impurity = gini(ys, idx);
    if impurity == 0.0 || depth >= config.max_depth || idx.len() < config.min_samples_split {
        return (
            Node::Leaf {
                label: majority(ys, idx),
            },
            depth,
        );
    }
    let d = xs[0].len();
    let n = idx.len() as f64;
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
    #[allow(clippy::needless_range_loop)] // `feature` indexes sample columns, not a slice
    for feature in 0..d {
        // Candidate thresholds: midpoints between consecutive sorted values.
        let mut values: Vec<f64> = idx.iter().map(|&i| xs[i][feature]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        for pair in values.windows(2) {
            let threshold = (pair[0] + pair[1]) / 2.0;
            let left: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| xs[i][feature] <= threshold)
                .collect();
            let right: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| xs[i][feature] > threshold)
                .collect();
            let score = (left.len() as f64 / n) * gini(ys, &left)
                + (right.len() as f64 / n) * gini(ys, &right);
            if best.is_none_or(|(_, _, s)| score < s) {
                best = Some((feature, threshold, score));
            }
        }
    }
    // Zero-gain splits are allowed (required for XOR-like labels, where no
    // single split reduces impurity but depth-two splits separate
    // perfectly); recursion terminates because each split strictly
    // partitions the samples and `max_depth` bounds the depth.
    match best {
        Some((feature, threshold, score)) if score <= impurity + 1e-12 => {
            let left_idx: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| xs[i][feature] <= threshold)
                .collect();
            let right_idx: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| xs[i][feature] > threshold)
                .collect();
            let (left, dl) = grow(xs, ys, &left_idx, depth + 1, config);
            let (right, dr) = grow(xs, ys, &right_idx, depth + 1, config);
            (
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                },
                dl.max(dr),
            )
        }
        _ => (
            Node::Leaf {
                label: majority(ys, idx),
            },
            depth,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_leaf_short_circuits() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1, 1, 1];
        let t = DecisionTree::fit(DecisionTreeConfig::default(), &xs, &ys).unwrap();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[100.0]), 1);
    }

    #[test]
    fn axis_aligned_split() {
        let xs = vec![vec![1.0], vec![2.0], vec![8.0], vec![9.0]];
        let ys = vec![0, 0, 1, 1];
        let t = DecisionTree::fit(DecisionTreeConfig::default(), &xs, &ys).unwrap();
        assert_eq!(t.predict(&[0.0]), 0);
        assert_eq!(t.predict(&[10.0]), 1);
    }

    #[test]
    fn xor_requires_depth_two() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0, 1, 1, 0];
        let t = DecisionTree::fit(
            DecisionTreeConfig {
                max_depth: 3,
                min_samples_split: 2,
            },
            &xs,
            &ys,
        )
        .unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(t.predict(x), y, "xor point {x:?}");
        }
    }

    #[test]
    fn max_depth_is_respected() {
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..64).map(|i| (i % 2) as usize).collect();
        let t = DecisionTree::fit(
            DecisionTreeConfig {
                max_depth: 2,
                min_samples_split: 2,
            },
            &xs,
            &ys,
        )
        .unwrap();
        assert!(t.depth() <= 2);
    }

    #[test]
    fn validates_input() {
        assert!(DecisionTree::fit(DecisionTreeConfig::default(), &[], &[]).is_err());
        assert!(DecisionTree::fit(DecisionTreeConfig::default(), &[vec![1.0]], &[0, 1]).is_err());
        assert!(DecisionTree::fit(
            DecisionTreeConfig::default(),
            &[vec![1.0], vec![1.0, 2.0]],
            &[0, 1]
        )
        .is_err());
    }
}
