//! K-fold cross-validation for model selection.
//!
//! The paper fixes `k = 3` for its KNN models without reporting a sweep;
//! the `ablation_knn_k` harness uses this module to justify (or challenge)
//! that choice on the simulated scenarios.

use crate::MlError;

/// Splits `n` samples into `folds` contiguous index blocks.
///
/// Blocks are contiguous (not shuffled) because the correspondence data is
/// temporal: shuffling would leak near-duplicate neighbouring frames between
/// train and validation, wildly inflating KNN scores.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] if `folds < 2` and
/// [`MlError::NotEnoughSamples`] if `n < folds`.
///
/// # Examples
///
/// ```
/// let folds = mvs_ml::kfold_indices(10, 3)?;
/// assert_eq!(folds.len(), 3);
/// let total: usize = folds.iter().map(Vec::len).sum();
/// assert_eq!(total, 10);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
pub fn kfold_indices(n: usize, folds: usize) -> Result<Vec<Vec<usize>>, MlError> {
    if folds < 2 {
        return Err(MlError::InvalidParameter("need at least two folds"));
    }
    if n < folds {
        return Err(MlError::NotEnoughSamples {
            required: folds,
            available: n,
        });
    }
    let base = n / folds;
    let extra = n % folds;
    let mut out = Vec::with_capacity(folds);
    let mut start = 0;
    for f in 0..folds {
        let len = base + usize::from(f < extra);
        out.push((start..start + len).collect());
        start += len;
    }
    Ok(out)
}

/// Mean validation accuracy of a classifier-fitting closure under K-fold
/// cross-validation.
///
/// `fit` receives the training rows/labels of each fold and returns the
/// fold's predictions for the held-out rows; this inversion keeps the
/// function independent of any one model type.
///
/// # Errors
///
/// Propagates [`kfold_indices`] errors and any error from `fit`.
pub fn cross_validate<F>(
    xs: &[Vec<f64>],
    ys: &[usize],
    folds: usize,
    mut fit: F,
) -> Result<f64, MlError>
where
    F: FnMut(&[Vec<f64>], &[usize], &[Vec<f64>]) -> Result<Vec<usize>, MlError>,
{
    if xs.len() != ys.len() {
        return Err(MlError::DimensionMismatch {
            expected: xs.len(),
            found: ys.len(),
        });
    }
    let blocks = kfold_indices(xs.len(), folds)?;
    let mut correct = 0usize;
    let mut total = 0usize;
    for held_out in &blocks {
        let held: std::collections::BTreeSet<usize> = held_out.iter().copied().collect();
        let mut train_x = Vec::with_capacity(xs.len() - held.len());
        let mut train_y = Vec::with_capacity(xs.len() - held.len());
        for i in 0..xs.len() {
            if !held.contains(&i) {
                train_x.push(xs[i].clone());
                train_y.push(ys[i]);
            }
        }
        let val_x: Vec<Vec<f64>> = held_out.iter().map(|&i| xs[i].clone()).collect();
        let pred = fit(&train_x, &train_y, &val_x)?;
        if pred.len() != val_x.len() {
            return Err(MlError::DimensionMismatch {
                expected: val_x.len(),
                found: pred.len(),
            });
        }
        for (p, &i) in pred.iter().zip(held_out) {
            if *p == ys[i] {
                correct += 1;
            }
        }
        total += held_out.len();
    }
    Ok(correct as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Classifier, KnnClassifier};

    #[test]
    fn kfold_blocks_partition_the_range() {
        let folds = kfold_indices(11, 3).unwrap();
        assert_eq!(folds.len(), 3);
        assert_eq!(folds[0].len(), 4); // 11 = 4 + 4 + 3
        assert_eq!(folds[1].len(), 4);
        assert_eq!(folds[2].len(), 3);
        let flat: Vec<usize> = folds.into_iter().flatten().collect();
        assert_eq!(flat, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn kfold_validates_parameters() {
        assert!(kfold_indices(10, 1).is_err());
        assert!(kfold_indices(2, 3).is_err());
    }

    #[test]
    fn cross_validation_scores_a_learnable_problem_high() {
        // Alternating blocks of a trivially separable problem.
        let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 2 * 100) as f64]).collect();
        let ys: Vec<usize> = (0..60).map(|i| i % 2).collect();
        let acc = cross_validate(&xs, &ys, 5, |tx, ty, vx| {
            let model = KnnClassifier::fit(3, tx, ty)?;
            Ok(model.predict_batch(vx))
        })
        .unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn cross_validation_scores_noise_near_chance() {
        // Labels independent of features: accuracy must hover around 0.5.
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 7) as f64]).collect();
        let ys: Vec<usize> = (0..200).map(|i| (i / 3) % 2).collect();
        let acc = cross_validate(&xs, &ys, 4, |tx, ty, vx| {
            let model = KnnClassifier::fit(3, tx, ty)?;
            Ok(model.predict_batch(vx))
        })
        .unwrap();
        assert!((0.2..0.8).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn cross_validation_propagates_fit_errors() {
        let xs = vec![vec![1.0]; 10];
        let ys = vec![0usize; 10];
        let r = cross_validate(&xs, &ys, 2, |_, _, _| {
            Err(MlError::InvalidParameter("boom"))
        });
        assert!(r.is_err());
    }

    #[test]
    fn mismatched_prediction_length_is_an_error() {
        let xs = vec![vec![1.0]; 10];
        let ys = vec![0usize; 10];
        let r = cross_validate(&xs, &ys, 2, |_, _, _| Ok(vec![0]));
        assert!(matches!(r, Err(MlError::DimensionMismatch { .. })));
    }
}
