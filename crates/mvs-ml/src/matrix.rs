//! Dense matrices and the few linear-algebra routines the toolbox needs.

use crate::MlError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f64`.
///
/// Only the operations required by this workspace are provided: products,
/// transpose, and solving (regularized) linear systems via Gaussian
/// elimination with partial pivoting. For the tiny systems involved
/// (homography: 8×8, linear regression: `d`×`d` with `d ≤ 5`) this is both
/// adequate and dependency-free.
///
/// # Examples
///
/// ```
/// use mvs_ml::Matrix;
///
/// let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]])?;
/// let x = a.solve(&[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the n×n identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] for an empty slice and
    /// [`MlError::DimensionMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MlError> {
        let Some(first) = rows.first() else {
            return Err(MlError::EmptyTrainingSet);
        };
        let cols = first.len();
        if cols == 0 {
            return Err(MlError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(MlError::DimensionMismatch {
                    expected: cols,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MlError> {
        if self.cols != other.rows {
            return Err(MlError::DimensionMismatch {
                expected: self.cols,
                found: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MlError> {
        if v.len() != self.cols {
            return Err(MlError::DimensionMismatch {
                expected: self.cols,
                found: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for a non-square system or a
    /// right-hand side of the wrong length, and [`MlError::SingularSystem`]
    /// when no unique solution exists.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MlError> {
        if self.rows != self.cols {
            return Err(MlError::DimensionMismatch {
                expected: self.rows,
                found: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(MlError::DimensionMismatch {
                expected: self.rows,
                found: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut rhs = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| {
                    a[(r1, col)]
                        .abs()
                        .partial_cmp(&a[(r2, col)].abs())
                        .expect("pivot magnitudes are comparable")
                })
                .expect("non-empty pivot range");
            if a[(pivot_row, col)].abs() < 1e-12 {
                return Err(MlError::SingularSystem);
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(pivot_row, j)];
                    a[(pivot_row, j)] = tmp;
                }
                rhs.swap(col, pivot_row);
            }
            // Eliminate below.
            for r in col + 1..n {
                let factor = a[(r, col)] / a[(col, col)];
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[(r, j)] -= factor * a[(col, j)];
                }
                rhs[r] -= factor * rhs[col];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = rhs[i];
            for j in i + 1..n {
                acc -= a[(i, j)] * x[j];
            }
            x[i] = acc / a[(i, i)];
        }
        Ok(x)
    }

    /// Solves the ridge-regularized least-squares problem
    /// `argmin_x ||A x − b||² + λ||x||²` via the normal equations
    /// `(AᵀA + λI) x = Aᵀ b`.
    ///
    /// # Errors
    ///
    /// Propagates dimension and singularity errors from the underlying
    /// solve; with `lambda > 0` the system is always non-singular.
    pub fn solve_least_squares(&self, b: &[f64], lambda: f64) -> Result<Vec<f64>, MlError> {
        if b.len() != self.rows {
            return Err(MlError::DimensionMismatch {
                expected: self.rows,
                found: b.len(),
            });
        }
        let at = self.transpose();
        let mut ata = at.matmul(self)?;
        for i in 0..ata.rows {
            ata[(i, i)] += lambda;
        }
        let atb = at.matvec(b)?;
        ata.solve(&atb)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            writeln!(f, "{:?}", self.row(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_rhs() {
        let i = Matrix::identity(3);
        let b = vec![1.0, -2.0, 3.0];
        assert_eq!(i.solve(&b).unwrap(), b);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_system_errors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MlError::SingularSystem));
    }

    #[test]
    fn matmul_shapes_and_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0], vec![6.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 1);
        assert_eq!(c[(0, 0)], 17.0);
        assert_eq!(c[(1, 0)], 39.0);
        assert!(b.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn least_squares_recovers_exact_fit() {
        // y = 2a + 3b, overdetermined but consistent.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ])
        .unwrap();
        let b = [2.0, 3.0, 5.0, 7.0];
        let x = a.solve_least_squares(&b, 0.0).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_shrinks_solution() {
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let exact = a.solve_least_squares(&[2.0, 2.0], 0.0).unwrap()[0];
        let ridge = a.solve_least_squares(&[2.0, 2.0], 10.0).unwrap()[0];
        assert!((exact - 2.0).abs() < 1e-9);
        assert!(ridge < exact);
    }

    #[test]
    fn from_rows_validates() {
        assert_eq!(Matrix::from_rows(&[]), Err(MlError::EmptyTrainingSet));
        assert!(matches!(
            Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }
}
