//! Error type for model fitting and prediction.

use std::fmt;

/// Error returned by model constructors and fitting routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Feature rows (or targets) had inconsistent lengths.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Observed length.
        found: usize,
    },
    /// A hyper-parameter was invalid (e.g. `k = 0`).
    InvalidParameter(&'static str),
    /// A linear system was singular / underdetermined.
    SingularSystem,
    /// Not enough samples for the requested operation (e.g. RANSAC minimal
    /// set, homography's four correspondences).
    NotEnoughSamples {
        /// Samples required.
        required: usize,
        /// Samples available.
        available: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "training set was empty"),
            MlError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MlError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            MlError::SingularSystem => write!(f, "linear system was singular"),
            MlError::NotEnoughSamples {
                required,
                available,
            } => write!(f, "needed {required} samples, had {available}"),
        }
    }
}

impl std::error::Error for MlError {}
