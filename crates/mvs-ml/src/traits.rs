//! Common model interfaces.

/// A fitted binary (or small multi-class) classifier over dense features.
///
/// Labels are `usize` class indices; the association module uses `0` for
/// "object not visible in the other camera" and `1` for "visible".
pub trait Classifier {
    /// Predicts the class label for one feature row.
    fn predict(&self, x: &[f64]) -> usize;

    /// Predicts labels for a batch of rows.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// A short human-readable model name for experiment tables.
    fn name(&self) -> &'static str;
}

/// A fitted multi-output regressor over dense features.
pub trait Regressor {
    /// Predicts the target vector for one feature row.
    fn predict(&self, x: &[f64]) -> Vec<f64>;

    /// Predicts targets for a batch of rows.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// A short human-readable model name for experiment tables.
    fn name(&self) -> &'static str;
}
