//! Multi-output linear (ridge) regression.
//!
//! The paper describes this baseline as a "learnable homography
//! transformation": an affine map from the source camera's bounding-box
//! coordinates to the target camera's.

use crate::{Matrix, MlError, Regressor};
use serde::{Deserialize, Serialize};

/// Multi-output linear regression with a bias term and optional ridge
/// penalty, solved in closed form via the normal equations.
///
/// # Examples
///
/// ```
/// use mvs_ml::{LinearRegression, Regressor};
///
/// // y = [2x + 1, -x]
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
/// let ys = vec![vec![1.0, 0.0], vec![3.0, -1.0], vec![5.0, -2.0], vec![7.0, -3.0]];
/// let model = LinearRegression::fit(&xs, &ys)?;
/// let y = model.predict(&[10.0]);
/// assert!((y[0] - 21.0).abs() < 1e-6);
/// assert!((y[1] + 10.0).abs() < 1e-6);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearRegression {
    /// One weight column (including trailing bias) per output dimension.
    weights: Vec<Vec<f64>>,
    in_dim: usize,
}

impl LinearRegression {
    /// Default ridge regularization (tiny, for numerical stability only).
    pub const LAMBDA: f64 = 1e-8;

    /// Fits with the default (numerically stabilizing) ridge penalty.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`]
    /// for malformed input and [`MlError::SingularSystem`] when the design
    /// matrix is degenerate.
    pub fn fit(xs: &[Vec<f64>], ys: &[Vec<f64>]) -> Result<Self, MlError> {
        Self::fit_with(xs, ys, Self::LAMBDA)
    }

    /// Fits with an explicit ridge penalty `lambda >= 0`.
    ///
    /// # Errors
    ///
    /// Same as [`LinearRegression::fit`], plus [`MlError::InvalidParameter`]
    /// for negative `lambda`.
    pub fn fit_with(xs: &[Vec<f64>], ys: &[Vec<f64>], lambda: f64) -> Result<Self, MlError> {
        if lambda < 0.0 {
            return Err(MlError::InvalidParameter("lambda must be non-negative"));
        }
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        let Some(first) = xs.first() else {
            return Err(MlError::EmptyTrainingSet);
        };
        let in_dim = first.len();
        let out_dim = ys
            .first()
            .map(Vec::len)
            .filter(|&d| d > 0)
            .ok_or(MlError::EmptyTrainingSet)?;
        // Design matrix with a trailing 1 for the bias.
        let rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                let mut r = x.clone();
                r.push(1.0);
                r
            })
            .collect();
        let a = Matrix::from_rows(&rows)?;
        let mut weights = Vec::with_capacity(out_dim);
        for out in 0..out_dim {
            let b: Result<Vec<f64>, MlError> = ys
                .iter()
                .map(|y| {
                    y.get(out).copied().ok_or(MlError::DimensionMismatch {
                        expected: out_dim,
                        found: y.len(),
                    })
                })
                .collect();
            weights.push(a.solve_least_squares(&b?, lambda)?);
        }
        Ok(LinearRegression { weights, in_dim })
    }

    /// Input dimensionality the model was trained with.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.len()
    }
}

impl Regressor for LinearRegression {
    fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "feature dimension mismatch");
        self.weights
            .iter()
            .map(|w| {
                let linear: f64 = w[..self.in_dim].iter().zip(x).map(|(a, b)| a * b).sum();
                linear + w[self.in_dim]
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "LinearRegression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_affine_map() {
        // y = 3x1 - 2x2 + 5.
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 3.0],
        ];
        let ys: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| vec![3.0 * x[0] - 2.0 * x[1] + 5.0])
            .collect();
        let m = LinearRegression::fit(&xs, &ys).unwrap();
        let y = m.predict(&[7.0, -1.0])[0];
        assert!((y - 28.0).abs() < 1e-6);
    }

    #[test]
    fn multi_output_dimensions() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![vec![2.0, 0.0], vec![4.0, 0.0], vec![6.0, 0.0]];
        let m = LinearRegression::fit(&xs, &ys).unwrap();
        assert_eq!(m.in_dim(), 1);
        assert_eq!(m.out_dim(), 2);
        let y = m.predict(&[5.0]);
        assert!((y[0] - 10.0).abs() < 1e-6);
        assert!(y[1].abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_is_least_squares() {
        // Overdetermined noisy y = x; estimate must stay near slope 1.
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64 + if i % 2 == 0 { 0.5 } else { -0.5 }])
            .collect();
        let m = LinearRegression::fit(&xs, &ys).unwrap();
        let y = m.predict(&[100.0])[0];
        assert!((y - 100.0).abs() < 1.0);
    }

    #[test]
    fn validates_input() {
        assert!(LinearRegression::fit(&[], &[]).is_err());
        assert!(LinearRegression::fit(&[vec![1.0]], &[vec![1.0], vec![2.0]]).is_err());
        assert!(LinearRegression::fit_with(&[vec![1.0]], &[vec![1.0]], -1.0).is_err());
        // Ragged targets.
        assert!(
            LinearRegression::fit(&[vec![1.0], vec![2.0]], &[vec![1.0, 2.0], vec![1.0]]).is_err()
        );
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn predict_rejects_wrong_dim() {
        let m = LinearRegression::fit(&[vec![1.0], vec![2.0]], &[vec![1.0], vec![2.0]]).unwrap();
        m.predict(&[1.0, 2.0]);
    }
}
