//! K-nearest-neighbour classification and regression.
//!
//! These are the paper's chosen cross-camera association models (Sec. II-C):
//! non-parametric lookup tables that use the nearest memorized cases to
//! predict (a) whether an object seen by camera *i* is visible in camera
//! *i'* and (b) where its bounding box lands there.

use crate::{Classifier, MlError, Regressor};
use serde::{Deserialize, Serialize};

/// Indices (into the training set) and distances of the `k` nearest rows.
fn k_nearest(train: &[Vec<f64>], x: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
    for (i, row) in train.iter().enumerate() {
        let d: f64 = row
            .iter()
            .zip(x)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // Insertion sort into the running top-k: k is tiny (≤ ~10).
        let pos = best.partition_point(|&(_, bd)| bd <= d);
        if pos < k {
            best.insert(pos, (i, d));
            best.truncate(k);
        }
    }
    best
}

/// K-nearest-neighbour classifier (majority vote, ties to lower label).
///
/// # Examples
///
/// ```
/// use mvs_ml::{Classifier, KnnClassifier};
///
/// let xs = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
/// let ys = vec![0, 0, 1, 1];
/// let model = KnnClassifier::fit(3, &xs, &ys)?;
/// assert_eq!(model.predict(&[0.5]), 0);
/// assert_eq!(model.predict(&[10.4]), 1);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnClassifier {
    k: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<usize>,
}

impl KnnClassifier {
    /// Memorizes the training set.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] when `k == 0`,
    /// [`MlError::EmptyTrainingSet`] for empty input, and
    /// [`MlError::DimensionMismatch`] when `xs` and `ys` differ in length or
    /// feature rows are ragged.
    pub fn fit(k: usize, xs: &[Vec<f64>], ys: &[usize]) -> Result<Self, MlError> {
        if k == 0 {
            return Err(MlError::InvalidParameter("k must be positive"));
        }
        validate_rows(xs)?;
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        Ok(KnnClassifier {
            k,
            xs: xs.to_vec(),
            ys: ys.to_vec(),
        })
    }

    /// Number of neighbours consulted per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Size of the memorized training set.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the training set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

impl Classifier for KnnClassifier {
    fn predict(&self, x: &[f64]) -> usize {
        let neighbours = k_nearest(&self.xs, x, self.k);
        let mut votes: Vec<(usize, usize)> = Vec::new(); // (label, count)
        for (i, _) in neighbours {
            let label = self.ys[i];
            match votes.iter_mut().find(|(l, _)| *l == label) {
                Some((_, c)) => *c += 1,
                None => votes.push((label, 1)),
            }
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(l, _)| l)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

/// K-nearest-neighbour multi-output regressor with inverse-distance
/// weighting.
///
/// # Examples
///
/// ```
/// use mvs_ml::{KnnRegressor, Regressor};
///
/// let xs = vec![vec![0.0], vec![2.0], vec![4.0]];
/// let ys = vec![vec![0.0], vec![20.0], vec![40.0]];
/// let model = KnnRegressor::fit(2, &xs, &ys)?;
/// let y = model.predict(&[1.0]);
/// assert!(y[0] > 5.0 && y[0] < 15.0);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnRegressor {
    k: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<Vec<f64>>,
}

impl KnnRegressor {
    /// Memorizes the training set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnnClassifier::fit`]; additionally the target
    /// rows must share one dimensionality.
    pub fn fit(k: usize, xs: &[Vec<f64>], ys: &[Vec<f64>]) -> Result<Self, MlError> {
        if k == 0 {
            return Err(MlError::InvalidParameter("k must be positive"));
        }
        validate_rows(xs)?;
        validate_rows(ys)?;
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        Ok(KnnRegressor {
            k,
            xs: xs.to_vec(),
            ys: ys.to_vec(),
        })
    }

    /// Number of neighbours consulted per query.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Regressor for KnnRegressor {
    fn predict(&self, x: &[f64]) -> Vec<f64> {
        let neighbours = k_nearest(&self.xs, x, self.k);
        let dim = self.ys[0].len();
        // Exact hit: return the memorized target (inverse-distance weighting
        // would divide by zero).
        if let Some(&(i, _)) = neighbours.iter().find(|&&(_, d)| d < 1e-12) {
            return self.ys[i].clone();
        }
        let mut out = vec![0.0; dim];
        let mut wsum = 0.0;
        for (i, d) in neighbours {
            let w = 1.0 / d;
            wsum += w;
            for (o, y) in out.iter_mut().zip(&self.ys[i]) {
                *o += w * y;
            }
        }
        for o in &mut out {
            *o /= wsum;
        }
        out
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

fn validate_rows(rows: &[Vec<f64>]) -> Result<(), MlError> {
    let Some(first) = rows.first() else {
        return Err(MlError::EmptyTrainingSet);
    };
    let d = first.len();
    for r in rows {
        if r.len() != d {
            return Err(MlError::DimensionMismatch {
                expected: d,
                found: r.len(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_majority_vote() {
        let xs = vec![vec![0.0], vec![0.1], vec![0.2], vec![10.0]];
        let ys = vec![1, 1, 0, 0];
        let m = KnnClassifier::fit(3, &xs, &ys).unwrap();
        // 3 nearest to 0.05 are labels {1,1,0} → majority 1.
        assert_eq!(m.predict(&[0.05]), 1);
    }

    #[test]
    fn classifier_k_larger_than_train() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0, 1];
        let m = KnnClassifier::fit(10, &xs, &ys).unwrap();
        // Uses all available points; tie between {0,1} breaks to lower label.
        assert_eq!(m.predict(&[0.5]), 0);
    }

    #[test]
    fn classifier_validates() {
        assert!(KnnClassifier::fit(0, &[vec![1.0]], &[0]).is_err());
        assert!(KnnClassifier::fit(1, &[], &[]).is_err());
        assert!(KnnClassifier::fit(1, &[vec![1.0]], &[0, 1]).is_err());
    }

    #[test]
    fn regressor_exact_hit_returns_target() {
        let xs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let ys = vec![vec![10.0], vec![20.0]];
        let m = KnnRegressor::fit(2, &xs, &ys).unwrap();
        assert_eq!(m.predict(&[1.0, 2.0]), vec![10.0]);
    }

    #[test]
    fn regressor_interpolates_between_neighbours() {
        let xs = vec![vec![0.0], vec![10.0]];
        let ys = vec![vec![0.0], vec![100.0]];
        let m = KnnRegressor::fit(2, &xs, &ys).unwrap();
        let y = m.predict(&[5.0])[0];
        assert!((y - 50.0).abs() < 1e-9); // equidistant → plain average
        let y = m.predict(&[1.0])[0];
        assert!(y < 50.0); // closer to 0 → pulled toward 0
    }

    #[test]
    fn regressor_multi_output() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![vec![0.0, 1.0], vec![1.0, 2.0], vec![2.0, 3.0]];
        let m = KnnRegressor::fit(1, &xs, &ys).unwrap();
        assert_eq!(m.predict(&[1.9]), vec![2.0, 3.0]);
    }

    #[test]
    fn k_nearest_orders_by_distance() {
        let train = vec![vec![5.0], vec![1.0], vec![3.0]];
        let n = k_nearest(&train, &[0.0], 2);
        assert_eq!(n[0].0, 1);
        assert_eq!(n[1].0, 2);
    }
}
