//! Binary logistic regression (classification baseline).

use crate::{Classifier, MlError, Standardizer};
use serde::{Deserialize, Serialize};

/// Binary logistic regression trained by full-batch gradient descent.
///
/// Features are standardized internally (pixel coordinates span three
/// orders of magnitude, which would cripple gradient descent otherwise).
///
/// # Examples
///
/// ```
/// use mvs_ml::{Classifier, LogisticRegression};
///
/// let xs = vec![vec![0.0], vec![1.0], vec![9.0], vec![10.0]];
/// let ys = vec![0, 0, 1, 1];
/// let model = LogisticRegression::fit(&xs, &ys)?;
/// assert_eq!(model.predict(&[0.5]), 0);
/// assert_eq!(model.predict(&[9.5]), 1);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    standardizer: Standardizer,
}

impl LogisticRegression {
    /// Default number of gradient-descent epochs.
    pub const EPOCHS: usize = 500;
    /// Default learning rate.
    pub const LEARNING_RATE: f64 = 0.5;

    /// Fits the model with default hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`]
    /// for malformed input.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize]) -> Result<Self, MlError> {
        Self::fit_with(xs, ys, Self::EPOCHS, Self::LEARNING_RATE)
    }

    /// Fits the model with explicit epoch count and learning rate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogisticRegression::fit`], plus
    /// [`MlError::InvalidParameter`] for zero epochs or a non-positive
    /// learning rate.
    pub fn fit_with(
        xs: &[Vec<f64>],
        ys: &[usize],
        epochs: usize,
        lr: f64,
    ) -> Result<Self, MlError> {
        if epochs == 0 {
            return Err(MlError::InvalidParameter("epochs must be positive"));
        }
        if lr <= 0.0 || lr.is_nan() {
            return Err(MlError::InvalidParameter("learning rate must be positive"));
        }
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        let standardizer = Standardizer::fit(xs)?;
        let z = standardizer.transform_batch(xs);
        let d = z[0].len();
        let n = z.len() as f64;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        for _ in 0..epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (x, &y) in z.iter().zip(ys) {
                let margin: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                let p = sigmoid(margin);
                let err = p - (y != 0) as usize as f64;
                for (g, xi) in gw.iter_mut().zip(x) {
                    *g += err * xi;
                }
                gb += err;
            }
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= lr * g / n;
            }
            b -= lr * gb / n;
        }
        Ok(LogisticRegression {
            weights: w,
            bias: b,
            standardizer,
        })
    }

    /// Predicted probability of the positive class.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let z = self.standardizer.transform(x);
        let margin: f64 = self
            .weights
            .iter()
            .zip(&z)
            .map(|(wi, xi)| wi * xi)
            .sum::<f64>()
            + self.bias;
        sigmoid(margin)
    }
}

impl Classifier for LogisticRegression {
    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.predict_proba(x) >= 0.5)
    }

    fn name(&self) -> &'static str {
        "Logistic"
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_data_is_learned() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let m = LogisticRegression::fit(&xs, &ys).unwrap();
        assert_eq!(m.predict(&[2.0]), 0);
        assert_eq!(m.predict(&[17.0]), 1);
        assert!(m.predict_proba(&[19.0]) > 0.9);
        assert!(m.predict_proba(&[0.0]) < 0.1);
    }

    #[test]
    fn handles_large_coordinate_scale() {
        // Pixel-scale features: standardization must make this learnable.
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![(i * 32) as f64, 500.0]).collect();
        let ys: Vec<usize> = (0..40).map(|i| usize::from(i * 32 >= 640)).collect();
        let m = LogisticRegression::fit(&xs, &ys).unwrap();
        assert_eq!(m.predict(&[100.0, 500.0]), 0);
        assert_eq!(m.predict(&[1200.0, 500.0]), 1);
    }

    #[test]
    fn two_dimensional_boundary() {
        // Positive iff x + y > 10.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                xs.push(vec![i as f64, j as f64]);
                ys.push(usize::from(i + j > 10));
            }
        }
        let m = LogisticRegression::fit(&xs, &ys).unwrap();
        assert_eq!(m.predict(&[1.0, 1.0]), 0);
        assert_eq!(m.predict(&[9.0, 9.0]), 1);
    }

    #[test]
    fn validates_input() {
        assert!(LogisticRegression::fit(&[], &[]).is_err());
        assert!(LogisticRegression::fit(&[vec![1.0]], &[0, 1]).is_err());
        assert!(LogisticRegression::fit_with(&[vec![1.0]], &[0], 0, 0.1).is_err());
        assert!(LogisticRegression::fit_with(&[vec![1.0]], &[0], 10, 0.0).is_err());
    }
}
