//! Homography estimation from point correspondences.
//!
//! The classical-vision baseline of Fig. 11: estimate a ground-plane
//! homography between two cameras and map bounding boxes through it. As the
//! paper notes, a planar homography cannot capture 3-D object extent, which
//! is why it loses to the data-driven KNN regressor.

use crate::{Matrix, MlError};
use mvs_geometry::{Point2, Projective2};

/// Estimates the homography `H` such that `H · src[i] ≈ dst[i]`, using the
/// normalized direct linear transform with the `h₃₃ = 1` gauge fixed and the
/// remaining 8 parameters solved by least squares.
///
/// At least four correspondences are required; more are used in a
/// least-squares sense.
///
/// # Errors
///
/// Returns [`MlError::NotEnoughSamples`] with fewer than four pairs,
/// [`MlError::DimensionMismatch`] when the slices differ in length, and
/// [`MlError::SingularSystem`] for degenerate configurations (e.g. all
/// source points collinear).
///
/// # Examples
///
/// ```
/// use mvs_geometry::{Point2, Projective2};
/// use mvs_ml::estimate_homography;
///
/// let truth = Projective2::translation(10.0, 5.0);
/// let src = [
///     Point2::new(0.0, 0.0), Point2::new(100.0, 0.0),
///     Point2::new(100.0, 100.0), Point2::new(0.0, 100.0),
/// ];
/// let dst: Vec<_> = src.iter().map(|&p| truth.apply(p).unwrap()).collect();
/// let h = estimate_homography(&src, &dst)?;
/// let mapped = h.apply(Point2::new(50.0, 50.0)).unwrap();
/// assert!(mapped.distance(Point2::new(60.0, 55.0)) < 1e-6);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
pub fn estimate_homography(src: &[Point2], dst: &[Point2]) -> Result<Projective2, MlError> {
    if src.len() != dst.len() {
        return Err(MlError::DimensionMismatch {
            expected: src.len(),
            found: dst.len(),
        });
    }
    if src.len() < 4 {
        return Err(MlError::NotEnoughSamples {
            required: 4,
            available: src.len(),
        });
    }
    // Hartley normalization: translate centroids to the origin and scale the
    // mean distance to sqrt(2). Dramatically improves conditioning for
    // pixel-scale coordinates.
    let (t_src, src_n) = normalize(src);
    let (t_dst, dst_n) = normalize(dst);

    // Each correspondence contributes two rows of the 8-unknown system.
    let mut rows = Vec::with_capacity(2 * src.len());
    let mut rhs = Vec::with_capacity(2 * src.len());
    for (s, d) in src_n.iter().zip(&dst_n) {
        let (x, y, u, v) = (s.x, s.y, d.x, d.y);
        rows.push(vec![x, y, 1.0, 0.0, 0.0, 0.0, -u * x, -u * y]);
        rhs.push(u);
        rows.push(vec![0.0, 0.0, 0.0, x, y, 1.0, -v * x, -v * y]);
        rhs.push(v);
    }
    let a = Matrix::from_rows(&rows)?;
    // No ridge term: degenerate configurations must surface as
    // `SingularSystem` rather than being silently regularized into a
    // meaningless transform.
    let h = a.solve_least_squares(&rhs, 0.0)?;
    let h_norm =
        Projective2::from_matrix([[h[0], h[1], h[2]], [h[3], h[4], h[5]], [h[6], h[7], 1.0]]);
    // Denormalize: H = T_dst⁻¹ · H_norm · T_src.
    let t_dst_inv = t_dst.inverse().ok_or(MlError::SingularSystem)?;
    Ok(t_dst_inv.compose(&h_norm).compose(&t_src))
}

/// Returns the normalizing transform and the transformed points.
fn normalize(pts: &[Point2]) -> (Projective2, Vec<Point2>) {
    let n = pts.len() as f64;
    let centroid = pts.iter().fold(Point2::ORIGIN, |acc, &p| acc + p) / n;
    let mean_dist = pts.iter().map(|p| p.distance(centroid)).sum::<f64>() / n;
    let scale = if mean_dist > 1e-12 {
        std::f64::consts::SQRT_2 / mean_dist
    } else {
        1.0
    };
    let t = Projective2::from_matrix([
        [scale, 0.0, -scale * centroid.x],
        [0.0, scale, -scale * centroid.y],
        [0.0, 0.0, 1.0],
    ]);
    let mapped = pts
        .iter()
        .map(|&p| t.apply(p).expect("normalizing transform is affine"))
        .collect();
    (t, mapped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply_all(h: &Projective2, pts: &[Point2]) -> Vec<Point2> {
        pts.iter().map(|&p| h.apply(p).unwrap()).collect()
    }

    fn sample_points() -> Vec<Point2> {
        vec![
            Point2::new(10.0, 20.0),
            Point2::new(620.0, 40.0),
            Point2::new(600.0, 460.0),
            Point2::new(30.0, 440.0),
            Point2::new(320.0, 240.0),
            Point2::new(150.0, 300.0),
        ]
    }

    #[test]
    fn recovers_affine_map() {
        let truth = Projective2::rotation(0.3).compose(&Projective2::translation(40.0, -20.0));
        let src = sample_points();
        let dst = apply_all(&truth, &src);
        let h = estimate_homography(&src, &dst).unwrap();
        for (&s, &d) in src.iter().zip(&dst) {
            assert!(h.apply(s).unwrap().distance(d) < 1e-6);
        }
    }

    #[test]
    fn recovers_projective_warp() {
        let truth =
            Projective2::from_matrix([[1.1, 0.05, 30.0], [-0.02, 0.95, 10.0], [1e-4, -5e-5, 1.0]]);
        let src = sample_points();
        let dst = apply_all(&truth, &src);
        let h = estimate_homography(&src, &dst).unwrap();
        // Test on a held-out point.
        let q = Point2::new(400.0, 100.0);
        assert!(h.apply(q).unwrap().distance(truth.apply(q).unwrap()) < 1e-4);
    }

    #[test]
    fn exact_four_point_fit() {
        let truth = Projective2::scale(2.0);
        let src = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let dst = apply_all(&truth, &src);
        let h = estimate_homography(&src, &dst).unwrap();
        assert!(
            h.apply(Point2::new(0.5, 0.5))
                .unwrap()
                .distance(Point2::new(1.0, 1.0))
                < 1e-9
        );
    }

    #[test]
    fn rejects_too_few_points() {
        let p = vec![Point2::ORIGIN; 3];
        assert!(matches!(
            estimate_homography(&p, &p),
            Err(MlError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let p = vec![Point2::ORIGIN; 4];
        let q = vec![Point2::ORIGIN; 5];
        assert!(matches!(
            estimate_homography(&p, &q),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn degenerate_collinear_points_error() {
        let src: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64, 0.0)).collect();
        let dst = src.clone();
        assert!(estimate_homography(&src, &dst).is_err());
    }
}
