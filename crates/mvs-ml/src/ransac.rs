//! RANSAC — robust regression in the presence of outliers.

use crate::{LinearRegression, MlError, Regressor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for [`Ransac`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RansacConfig {
    /// Number of random minimal-set iterations.
    pub iterations: usize,
    /// Maximum mean absolute residual (per output coordinate) for a sample
    /// to count as an inlier.
    pub inlier_threshold: f64,
    /// Minimal-set size; must be at least `in_dim + 1` to determine an
    /// affine model. Slightly larger values tolerate degenerate samples.
    pub min_samples: usize,
    /// RNG seed (RANSAC is randomized; the seed keeps runs reproducible).
    pub seed: u64,
}

impl Default for RansacConfig {
    fn default() -> Self {
        RansacConfig {
            iterations: 100,
            inlier_threshold: 30.0, // pixels, matched to bbox-coordinate MAE scale
            min_samples: 6,
            seed: 7,
        }
    }
}

/// RANSAC around a [`LinearRegression`] base model.
///
/// Repeatedly fits the base model on random minimal sets, scores inliers by
/// mean absolute residual, keeps the consensus-maximal model, and refits on
/// its inliers (the classical Fischler–Bolles scheme, used by the paper as
/// the robust-regression baseline in Fig. 11).
///
/// # Examples
///
/// ```
/// use mvs_ml::{Ransac, RansacConfig, Regressor};
///
/// // y = 2x with two gross outliers.
/// let mut xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
/// let mut ys: Vec<Vec<f64>> = (0..20).map(|i| vec![2.0 * i as f64]).collect();
/// xs.push(vec![5.0]); ys.push(vec![500.0]);
/// xs.push(vec![6.0]); ys.push(vec![-400.0]);
/// let cfg = RansacConfig { inlier_threshold: 1.0, min_samples: 3, ..Default::default() };
/// let model = Ransac::fit(cfg, &xs, &ys)?;
/// assert!((model.predict(&[50.0])[0] - 100.0).abs() < 1.0);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ransac {
    model: LinearRegression,
    inliers: usize,
}

impl Ransac {
    /// Fits a robust linear model.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotEnoughSamples`] when fewer than
    /// `config.min_samples` rows are supplied, [`MlError::InvalidParameter`]
    /// for a non-positive threshold or zero iterations, and propagates base
    /// model errors if even the full-data fallback fit fails.
    pub fn fit(config: RansacConfig, xs: &[Vec<f64>], ys: &[Vec<f64>]) -> Result<Self, MlError> {
        if config.iterations == 0 {
            return Err(MlError::InvalidParameter("iterations must be positive"));
        }
        if config.inlier_threshold <= 0.0 || config.inlier_threshold.is_nan() {
            return Err(MlError::InvalidParameter(
                "inlier_threshold must be positive",
            ));
        }
        if xs.len() < config.min_samples {
            return Err(MlError::NotEnoughSamples {
                required: config.min_samples,
                available: xs.len(),
            });
        }
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut indices: Vec<usize> = (0..xs.len()).collect();
        let mut best: Option<(Vec<usize>, usize)> = None; // (inlier idx, count)
        for _ in 0..config.iterations {
            indices.shuffle(&mut rng);
            let sample = &indices[..config.min_samples];
            let sx: Vec<Vec<f64>> = sample.iter().map(|&i| xs[i].clone()).collect();
            let sy: Vec<Vec<f64>> = sample.iter().map(|&i| ys[i].clone()).collect();
            // Degenerate minimal sets (collinear points) fail to fit; skip.
            let Ok(candidate) = LinearRegression::fit(&sx, &sy) else {
                continue;
            };
            let inliers: Vec<usize> = (0..xs.len())
                .filter(|&i| residual(&candidate, &xs[i], &ys[i]) <= config.inlier_threshold)
                .collect();
            if best.as_ref().is_none_or(|(_, n)| inliers.len() > *n) {
                let n = inliers.len();
                best = Some((inliers, n));
            }
        }
        let (inlier_idx, count) = best.ok_or(MlError::SingularSystem)?;
        // Refit on the consensus set; fall back to all data when consensus is
        // too small to determine the model.
        let (fx, fy): (Vec<Vec<f64>>, Vec<Vec<f64>>) = if inlier_idx.len() >= config.min_samples {
            (
                inlier_idx.iter().map(|&i| xs[i].clone()).collect(),
                inlier_idx.iter().map(|&i| ys[i].clone()).collect(),
            )
        } else {
            (xs.to_vec(), ys.to_vec())
        };
        let model = LinearRegression::fit(&fx, &fy)?;
        Ok(Ransac {
            model,
            inliers: count,
        })
    }

    /// Number of inliers in the winning consensus set.
    pub fn inlier_count(&self) -> usize {
        self.inliers
    }
}

fn residual(model: &LinearRegression, x: &[f64], y: &[f64]) -> f64 {
    let p = model.predict(x);
    p.iter().zip(y).map(|(a, b)| (a - b).abs()).sum::<f64>() / y.len() as f64
}

impl Regressor for Ransac {
    fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.model.predict(x)
    }

    fn name(&self) -> &'static str {
        "RANSAC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with_outliers(outliers: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let mut ys: Vec<Vec<f64>> = (0..30).map(|i| vec![3.0 * i as f64 + 1.0]).collect();
        for k in 0..outliers {
            xs.push(vec![k as f64]);
            ys.push(vec![1000.0 + k as f64]);
        }
        (xs, ys)
    }

    fn cfg() -> RansacConfig {
        RansacConfig {
            iterations: 200,
            inlier_threshold: 0.5,
            min_samples: 3,
            seed: 42,
        }
    }

    #[test]
    fn ignores_gross_outliers() {
        let (xs, ys) = line_with_outliers(8);
        let m = Ransac::fit(cfg(), &xs, &ys).unwrap();
        assert!((m.predict(&[100.0])[0] - 301.0).abs() < 0.5);
        assert!(m.inlier_count() >= 30);
    }

    #[test]
    fn plain_least_squares_is_skewed_by_same_outliers() {
        // Sanity check that RANSAC is actually doing something: OLS on the
        // same data is pulled far off the line.
        let (xs, ys) = line_with_outliers(8);
        let ols = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((ols.predict(&[100.0])[0] - 301.0).abs() > 10.0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let (xs, ys) = line_with_outliers(5);
        let a = Ransac::fit(cfg(), &xs, &ys).unwrap();
        let b = Ransac::fit(cfg(), &xs, &ys).unwrap();
        assert_eq!(a.predict(&[10.0]), b.predict(&[10.0]));
    }

    #[test]
    fn validates_input() {
        let (xs, ys) = line_with_outliers(0);
        assert!(matches!(
            Ransac::fit(
                RansacConfig {
                    min_samples: 1000,
                    ..cfg()
                },
                &xs,
                &ys
            ),
            Err(MlError::NotEnoughSamples { .. })
        ));
        assert!(Ransac::fit(
            RansacConfig {
                iterations: 0,
                ..cfg()
            },
            &xs,
            &ys
        )
        .is_err());
        assert!(Ransac::fit(
            RansacConfig {
                inlier_threshold: 0.0,
                ..cfg()
            },
            &xs,
            &ys
        )
        .is_err());
    }
}
