//! Linear support-vector machine (classification baseline).

use crate::{Classifier, MlError, Standardizer};
use serde::{Deserialize, Serialize};

/// A linear SVM trained with the Pegasos sub-gradient method.
///
/// Deterministic: Pegasos normally samples one example per step; this
/// implementation cycles through the training set in order, which keeps the
/// experiment harness reproducible without seeding.
///
/// # Examples
///
/// ```
/// use mvs_ml::{Classifier, LinearSvm};
///
/// let xs = vec![vec![0.0], vec![1.0], vec![9.0], vec![10.0]];
/// let ys = vec![0, 0, 1, 1];
/// let model = LinearSvm::fit(&xs, &ys)?;
/// assert_eq!(model.predict(&[0.2]), 0);
/// assert_eq!(model.predict(&[9.8]), 1);
/// # Ok::<(), mvs_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    standardizer: Standardizer,
}

impl LinearSvm {
    /// Default number of passes over the training set.
    pub const EPOCHS: usize = 60;
    /// Default regularization strength λ.
    pub const LAMBDA: f64 = 1e-3;

    /// Fits with default hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] / [`MlError::DimensionMismatch`]
    /// for malformed input.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize]) -> Result<Self, MlError> {
        Self::fit_with(xs, ys, Self::EPOCHS, Self::LAMBDA)
    }

    /// Fits with explicit epochs and regularization.
    ///
    /// # Errors
    ///
    /// Same as [`LinearSvm::fit`], plus [`MlError::InvalidParameter`] for
    /// zero epochs or non-positive λ.
    pub fn fit_with(
        xs: &[Vec<f64>],
        ys: &[usize],
        epochs: usize,
        lambda: f64,
    ) -> Result<Self, MlError> {
        if epochs == 0 {
            return Err(MlError::InvalidParameter("epochs must be positive"));
        }
        if lambda <= 0.0 || lambda.is_nan() {
            return Err(MlError::InvalidParameter("lambda must be positive"));
        }
        if xs.len() != ys.len() {
            return Err(MlError::DimensionMismatch {
                expected: xs.len(),
                found: ys.len(),
            });
        }
        let standardizer = Standardizer::fit(xs)?;
        let z = standardizer.transform_batch(xs);
        let d = z[0].len();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut t = 1usize;
        for _ in 0..epochs {
            for (x, &label) in z.iter().zip(ys) {
                let y = if label != 0 { 1.0 } else { -1.0 };
                let eta = 1.0 / (lambda * t as f64);
                let margin: f64 = y * (w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b);
                // Sub-gradient step on the hinge loss + L2 penalty.
                for wi in w.iter_mut() {
                    *wi *= 1.0 - eta * lambda;
                }
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(x) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y;
                }
                t += 1;
            }
        }
        Ok(LinearSvm {
            weights: w,
            bias: b,
            standardizer,
        })
    }

    /// Signed distance to the decision hyperplane (positive → class 1).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        let z = self.standardizer.transform(x);
        self.weights
            .iter()
            .zip(&z)
            .map(|(wi, xi)| wi * xi)
            .sum::<f64>()
            + self.bias
    }
}

impl Classifier for LinearSvm {
    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.decision_function(x) >= 0.0)
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_data_is_learned() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..30).map(|i| usize::from(i >= 15)).collect();
        let m = LinearSvm::fit(&xs, &ys).unwrap();
        assert_eq!(m.predict(&[3.0]), 0);
        assert_eq!(m.predict(&[27.0]), 1);
    }

    #[test]
    fn margin_sign_matches_class() {
        let xs = vec![
            vec![-5.0, 0.0],
            vec![-4.0, 1.0],
            vec![4.0, 0.0],
            vec![5.0, 1.0],
        ];
        let ys = vec![0, 0, 1, 1];
        let m = LinearSvm::fit(&xs, &ys).unwrap();
        assert!(m.decision_function(&[-4.5, 0.5]) < 0.0);
        assert!(m.decision_function(&[4.5, 0.5]) > 0.0);
    }

    #[test]
    fn pixel_scale_features() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![(i * 30) as f64]).collect();
        let ys: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let m = LinearSvm::fit(&xs, &ys).unwrap();
        assert_eq!(m.predict(&[30.0]), 0);
        assert_eq!(m.predict(&[1100.0]), 1);
    }

    #[test]
    fn validates_input() {
        assert!(LinearSvm::fit(&[], &[]).is_err());
        assert!(LinearSvm::fit(&[vec![0.0]], &[0, 1]).is_err());
        assert!(LinearSvm::fit_with(&[vec![0.0]], &[0], 0, 0.1).is_err());
        assert!(LinearSvm::fit_with(&[vec![0.0]], &[0], 5, -1.0).is_err());
    }
}
