//! Classification and regression quality metrics.

/// Confusion counts for a binary classification task where label `1` is the
/// positive class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinaryConfusion {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
}

impl BinaryConfusion {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(pred: &[usize], truth: &[usize]) -> Self {
        assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
        let mut c = BinaryConfusion::default();
        for (&p, &t) in pred.iter().zip(truth) {
            match (p != 0, t != 0) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision = TP / (TP + FP); `1.0` when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall = TP / (TP + FN); `1.0` when there were no positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Convenience wrapper returning `(precision, recall)`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn precision_recall(pred: &[usize], truth: &[usize]) -> (f64, f64) {
    let c = BinaryConfusion::from_predictions(pred, truth);
    (c.precision(), c.recall())
}

/// Fraction of matching labels; `0.0` for empty input.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Mean absolute error over flattened multi-output predictions.
///
/// This matches the paper's regression metric: MAE between predicted and
/// ground-truth bounding-box coordinates, averaged over all coordinates of
/// all test boxes.
///
/// # Panics
///
/// Panics if the slices (or any paired rows) differ in length, or the input
/// is empty.
pub fn mean_absolute_error(pred: &[Vec<f64>], truth: &[Vec<f64>]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/target length mismatch");
    assert!(!pred.is_empty(), "MAE of an empty set is undefined");
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        assert_eq!(p.len(), t.len(), "row dimension mismatch");
        for (pi, ti) in p.iter().zip(t) {
            total += (pi - ti).abs();
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let pred = [1, 1, 0, 0, 1];
        let truth = [1, 0, 0, 1, 1];
        let c = BinaryConfusion::from_predictions(&pred, &truth);
        assert_eq!(
            c,
            BinaryConfusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_precision_recall() {
        let c = BinaryConfusion::from_predictions(&[0, 0], &[0, 0]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn f1_zero_when_nothing_right() {
        let c = BinaryConfusion::from_predictions(&[1, 1], &[0, 0]);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn mae_flattens_outputs() {
        let pred = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let truth = vec![vec![2.0, 2.0], vec![3.0, 0.0]];
        assert!((mean_absolute_error(&pred, &truth) - (1.0 + 0.0 + 0.0 + 4.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mae_rejects_mismatched_lengths() {
        mean_absolute_error(&[vec![1.0]], &[]);
    }
}
