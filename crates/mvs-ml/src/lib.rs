//! A small, self-contained machine-learning toolbox.
//!
//! The cross-camera object association module of the paper (Sec. II-C)
//! compares a K-nearest-neighbour classifier/regressor against several
//! classical baselines. All of them are implemented here from scratch:
//!
//! * [`KnnClassifier`] / [`KnnRegressor`] — the paper's chosen models;
//! * [`LogisticRegression`] — binary classification baseline;
//! * [`LinearSvm`] — linear support-vector machine (Pegasos) baseline;
//! * [`DecisionTree`] — CART classification baseline;
//! * [`LinearRegression`] — multi-output ridge regression ("learnable
//!   homography") baseline;
//! * [`Ransac`] — robust regression baseline;
//! * [`estimate_homography`] — classical homography fit (fixed-scale DLT);
//! * [`hungarian`] — the Kuhn–Munkres assignment algorithm used for
//!   detection↔prediction matching.
//!
//! Everything works on `&[Vec<f64>]` feature rows; there is no external
//! linear-algebra dependency — [`Matrix`] provides the little that is
//! needed (Gaussian elimination and normal equations).
//!
//! # Examples
//!
//! ```
//! use mvs_ml::{KnnClassifier, Classifier};
//!
//! let xs = vec![vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 5.0]];
//! let ys = vec![0, 0, 1, 1];
//! let knn = KnnClassifier::fit(3, &xs, &ys)?;
//! assert_eq!(knn.predict(&[0.05, 0.05]), 0);
//! assert_eq!(knn.predict(&[4.9, 5.2]), 1);
//! # Ok::<(), mvs_ml::MlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod homography;
mod hungarian;
mod knn;
mod linreg;
mod logistic;
mod matrix;
mod metrics;
mod ransac;
mod svm;
mod traits;
mod tree;
mod validate;

pub use dataset::{train_test_split, Standardizer};
pub use error::MlError;
pub use homography::estimate_homography;
pub use hungarian::{hungarian, hungarian_max, Assignment as HungarianAssignment};
pub use knn::{KnnClassifier, KnnRegressor};
pub use linreg::LinearRegression;
pub use logistic::LogisticRegression;
pub use matrix::Matrix;
pub use metrics::{accuracy, mean_absolute_error, precision_recall, BinaryConfusion};
pub use ransac::{Ransac, RansacConfig};
pub use svm::LinearSvm;
pub use traits::{Classifier, Regressor};
pub use tree::{DecisionTree, DecisionTreeConfig};
pub use validate::{cross_validate, kfold_indices};
