//! Property-based tests for the geometry primitives.

use mvs_geometry::{BBox, FrameDims, Grid, Point2, Projective2, SizeClass};
use proptest::prelude::*;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (
        -500.0f64..1500.0,
        -500.0f64..1500.0,
        0.0f64..400.0,
        0.0f64..400.0,
    )
        .prop_map(|(x, y, w, h)| BBox::new(x, y, x + w, y + h).expect("constructed valid"))
}

fn arb_point() -> impl Strategy<Value = Point2> {
    (-1000.0f64..2000.0, -1000.0f64..2000.0).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #[test]
    fn iou_is_bounded_and_symmetric(a in arb_bbox(), b in arb_bbox()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn iou_with_self_is_one_for_positive_area(a in arb_bbox()) {
        prop_assume!(a.area() > 0.0);
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn intersection_area_is_at_most_either_area(a in arb_bbox(), b in arb_bbox()) {
        let i = a.intersection_area(&b);
        prop_assert!(i <= a.area() + 1e-9);
        prop_assert!(i <= b.area() + 1e-9);
        prop_assert!(i >= 0.0);
    }

    #[test]
    fn union_hull_contains_both(a in arb_bbox(), b in arb_bbox()) {
        let h = a.union_hull(&b);
        prop_assert!(h.contains_box(&a));
        prop_assert!(h.contains_box(&b));
    }

    #[test]
    fn translation_preserves_area_and_iou(a in arb_bbox(), d in arb_point()) {
        let t = a.translated(d);
        prop_assert!((t.area() - a.area()).abs() < 1e-6);
        // Translating both boxes together preserves their IoU.
        let b = a.scaled_about_center(0.7);
        let tb = b.translated(d);
        prop_assert!((a.iou(&b) - t.iou(&tb)).abs() < 1e-9);
    }

    #[test]
    fn expanded_square_always_contains_center(a in arb_bbox(), side in 1.0f64..600.0) {
        let e = a.expanded_to_square(side);
        prop_assert!(e.contains_point(a.center()));
        prop_assert!((e.width() - side).abs() < 1e-9);
        prop_assert!((e.height() - side).abs() < 1e-9);
    }

    #[test]
    fn quantize_covers_the_region_or_saturates(w in 0.1f64..2000.0, h in 0.1f64..2000.0) {
        let class = SizeClass::quantize(w, h);
        let long = w.max(h);
        if long <= 512.0 {
            prop_assert!(class.side() as f64 >= long);
            // And it is the smallest such class.
            if let Some(smaller) = match class {
                SizeClass::S64 => None,
                c => Some(SizeClass::from_index(c.index() - 1)),
            } {
                prop_assert!((smaller.side() as f64) < long);
            }
        } else {
            prop_assert_eq!(class, SizeClass::S512);
        }
    }

    #[test]
    fn grid_cell_lookup_matches_cell_bbox(
        x in 0.0f64..1279.0,
        y in 0.0f64..703.0,
        cell in prop::sample::select(vec![32u32, 64, 100, 127]),
    ) {
        let grid = Grid::new(FrameDims::REGULAR, cell);
        let p = Point2::new(x, y);
        let idx = grid.cell_at(p).expect("point is inside the frame");
        prop_assert!(grid.cell_bbox(idx).contains_point(p));
    }

    #[test]
    fn grid_cells_partition_the_frame(cell in prop::sample::select(vec![32u32, 64, 128])) {
        let grid = Grid::new(FrameDims::REGULAR, cell);
        let total: f64 = grid.iter().map(|c| grid.cell_bbox(c).area()).sum();
        prop_assert!((total - FrameDims::REGULAR.pixel_count() as f64).abs() < 1e-6);
    }

    #[test]
    fn homography_inverse_round_trips(
        p in arb_point(),
        dx in -200.0f64..200.0,
        dy in -200.0f64..200.0,
        angle in -3.0f64..3.0,
        scale in 0.2f64..5.0,
    ) {
        let h = Projective2::translation(dx, dy)
            .compose(&Projective2::rotation(angle))
            .compose(&Projective2::scale(scale));
        let inv = h.inverse().expect("similarity transforms are invertible");
        let q = h.apply(p).expect("affine maps are total");
        let back = inv.apply(q).expect("affine maps are total");
        prop_assert!(back.distance(p) < 1e-6);
    }

    #[test]
    fn clamping_never_grows_the_box(a in arb_bbox()) {
        if let Some(c) = a.clamped_to(FrameDims::REGULAR) {
            prop_assert!(c.area() <= a.area() + 1e-9);
            prop_assert!(a.contains_box(&c));
            prop_assert!(FrameDims::REGULAR.contains(&c));
        }
    }
}

mod polygon_properties {
    use mvs_geometry::{Point2, Polygon};
    use proptest::prelude::*;

    fn arb_wedge() -> impl Strategy<Value = Polygon> {
        (
            -50.0f64..50.0,
            -50.0f64..50.0,
            0.0f64..6.28,
            0.1f64..1.4,
            0.5f64..5.0,
            10.0f64..100.0,
        )
            .prop_map(|(x, y, heading, half_fov, near, extra)| {
                Polygon::view_wedge(Point2::new(x, y), heading, half_fov, near, near + extra)
            })
    }

    proptest! {
        #[test]
        fn wedge_area_is_positive_and_finite(w in arb_wedge()) {
            let a = w.area();
            prop_assert!(a > 0.0 && a.is_finite());
        }

        #[test]
        fn wedge_contains_points_along_its_axis(
            x in -50.0f64..50.0,
            y in -50.0f64..50.0,
            heading in 0.0f64..6.28,
        ) {
            let apex = Point2::new(x, y);
            let w = Polygon::view_wedge(apex, heading, 0.5, 2.0, 50.0);
            let dir = Point2::new(heading.cos(), heading.sin());
            // Midway along the viewing axis is always inside.
            prop_assert!(w.contains(apex + dir * 25.0));
            // The apex itself is before the near plane.
            prop_assert!(!w.contains(apex));
        }

        #[test]
        fn bbox_contains_every_vertex(w in arb_wedge()) {
            let bb = w.bbox();
            for &v in w.vertices() {
                prop_assert!(bb.contains_point(v));
            }
        }

        #[test]
        fn containment_respects_vertex_hull(w in arb_wedge()) {
            // The centroid of the vertices of a convex polygon is inside it.
            let n = w.vertices().len() as f64;
            let centroid = w
                .vertices()
                .iter()
                .fold(Point2::ORIGIN, |acc, &v| acc + v)
                / n;
            prop_assert!(w.contains(centroid));
        }
    }
}
