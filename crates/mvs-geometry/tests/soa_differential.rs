//! Differential proptests: every [`BBoxSoA`] kernel bitwise-equal to the
//! scalar [`BBox`] methods it replaces.
//!
//! The SoA hot path is only allowed to change *layout*, never arithmetic:
//! each kernel must evaluate the same floating-point expression, in the
//! same order, as the AoS method, so results agree under `f64::to_bits`
//! (not approximate comparison). Scenes include degenerate (zero-area)
//! boxes and empty batches on both sides of every kernel.

use mvs_geometry::{BBox, BBoxSoA, Point2};
use proptest::prelude::*;

/// Boxes with a degenerate (zero width and/or height) minority, since the
/// coverage and IoU kernels special-case zero areas.
fn arb_bbox() -> impl Strategy<Value = BBox> {
    (
        -500.0f64..1500.0,
        -500.0f64..1500.0,
        0.0f64..300.0,
        0.0f64..300.0,
        0u32..8,
    )
        .prop_map(|(x, y, w, h, degenerate)| {
            let (w, h) = match degenerate {
                0 => (0.0, h),
                1 => (w, 0.0),
                2 => (0.0, 0.0),
                _ => (w, h),
            };
            BBox::new(x, y, x + w, y + h).expect("constructed valid")
        })
}

fn arb_boxes() -> impl Strategy<Value = Vec<BBox>> {
    prop::collection::vec(arb_bbox(), 0..24)
}

fn arb_point() -> impl Strategy<Value = Point2> {
    (-600.0f64..1900.0, -600.0f64..1900.0).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #[test]
    fn accessors_match_bbox_bitwise(boxes in arb_boxes(), p in arb_point(), probe in arb_bbox()) {
        let soa = BBoxSoA::from_boxes(&boxes);
        prop_assert_eq!(soa.len(), boxes.len());
        prop_assert_eq!(soa.is_empty(), boxes.is_empty());
        for (i, b) in boxes.iter().enumerate() {
            prop_assert_eq!(soa.get(i), *b);
            prop_assert_eq!(soa.area(i).to_bits(), b.area().to_bits());
            let (sc, bc) = (soa.center(i), b.center());
            prop_assert_eq!(sc.x.to_bits(), bc.x.to_bits());
            prop_assert_eq!(sc.y.to_bits(), bc.y.to_bits());
            prop_assert_eq!(soa.contains_point(i, p), b.contains_point(p));
            prop_assert_eq!(
                soa.intersection_area(i, &probe).to_bits(),
                b.intersection_area(&probe).to_bits()
            );
        }
    }

    #[test]
    fn iou_matrix_matches_nested_scalar_bitwise(a in arb_boxes(), b in arb_boxes()) {
        let (sa, sb) = (BBoxSoA::from_boxes(&a), BBoxSoA::from_boxes(&b));
        let mut matrix = Vec::new();
        sa.iou_matrix_into(&sb, &mut matrix);
        prop_assert_eq!(matrix.len(), a.len() * b.len());
        for (i, ba) in a.iter().enumerate() {
            for (j, bb) in b.iter().enumerate() {
                prop_assert_eq!(
                    matrix[i * b.len() + j].to_bits(),
                    ba.iou(bb).to_bits(),
                    "IoU({i},{j}) diverged"
                );
            }
        }
        // Scratch reuse: the transposed query through the same buffer must
        // be just as exact.
        sb.iou_matrix_into(&sa, &mut matrix);
        prop_assert_eq!(matrix.len(), a.len() * b.len());
        for (j, bb) in b.iter().enumerate() {
            for (i, ba) in a.iter().enumerate() {
                prop_assert_eq!(matrix[j * a.len() + i].to_bits(), bb.iou(ba).to_bits());
            }
        }
    }

    #[test]
    fn coverage_kernels_match_scalar_any(
        boxes in arb_boxes(),
        covers in arb_boxes(),
        threshold in 0.0f64..1.0,
    ) {
        let soa = BBoxSoA::from_boxes(&boxes);
        let cover_cols = BBoxSoA::from_boxes(&covers);
        let mut mask = Vec::new();
        soa.covered_mask_into(&cover_cols, threshold, &mut mask);
        prop_assert_eq!(mask.len(), boxes.len());
        for (i, b) in boxes.iter().enumerate() {
            let scalar = covers.iter().any(|p| b.coverage_by(p) >= threshold);
            prop_assert_eq!(mask[i], scalar, "mask[{i}] diverged");
            prop_assert_eq!(cover_cols.covers_box(b, threshold), scalar);
        }
    }

    #[test]
    fn smallest_containing_matches_scalar_scan(boxes in arb_boxes(), p in arb_point()) {
        let soa = BBoxSoA::from_boxes(&boxes);
        // The scalar selection rule: smallest containing area wins, ties
        // break to the earliest index (strict `<` over an in-order scan).
        let mut scalar: Option<(usize, f64)> = None;
        for (i, b) in boxes.iter().enumerate() {
            if b.contains_point(p) {
                let area = b.area();
                if scalar.is_none_or(|(_, a)| area < a) {
                    scalar = Some((i, area));
                }
            }
        }
        prop_assert_eq!(soa.smallest_containing(p), scalar.map(|(i, _)| i));
        // Box centres of non-degenerate boxes always resolve to some box.
        for (i, b) in boxes.iter().enumerate() {
            if b.area() > 0.0 {
                prop_assert!(soa.smallest_containing(b.center()).is_some(), "centre of box {i}");
            }
        }
    }

    #[test]
    fn refill_round_trips_after_reuse(a in arb_boxes(), b in arb_boxes(), extra in arb_bbox()) {
        // Warm-buffer refills and incremental pushes must leave exactly the
        // columns a fresh build would produce.
        let mut soa = BBoxSoA::from_boxes(&a);
        soa.fill_from_boxes(&b);
        soa.push(extra);
        let mut expect = b.clone();
        expect.push(extra);
        prop_assert_eq!(soa.len(), expect.len());
        let fresh = BBoxSoA::from_boxes(&expect);
        prop_assert_eq!(&soa, &fresh);
        let (x1, y1, x2, y2) = soa.columns();
        for (i, e) in expect.iter().enumerate() {
            prop_assert_eq!(x1[i].to_bits(), e.x1().to_bits());
            prop_assert_eq!(y1[i].to_bits(), e.y1().to_bits());
            prop_assert_eq!(x2[i].to_bits(), e.x2().to_bits());
            prop_assert_eq!(y2[i].to_bits(), e.y2().to_bits());
        }
        soa.clear();
        prop_assert!(soa.is_empty());
    }
}
