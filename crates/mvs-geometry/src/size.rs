//! Quantized partial-region sizes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The quantized spatial sizes used for partial-frame DNN inspection.
///
/// Only crops with the same spatial size can be put into one GPU batch, so
/// the tracker expands every predicted search region to the nearest size in
/// this set (Sec. II-B of the paper). Regions larger than 512 are
/// *downsampled* to 512 — large objects are easy to detect at reduced
/// resolution — so `S512` is also the catch-all for oversized regions.
///
/// # Examples
///
/// ```
/// use mvs_geometry::SizeClass;
///
/// assert_eq!(SizeClass::quantize(30.0, 50.0), SizeClass::S64);
/// assert_eq!(SizeClass::quantize(300.0, 100.0), SizeClass::S512);
/// assert_eq!(SizeClass::quantize(2000.0, 900.0), SizeClass::S512); // downsized
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// 64×64 crop.
    S64,
    /// 128×128 crop.
    S128,
    /// 256×256 crop.
    S256,
    /// 512×512 crop (also used, with downsampling, for larger regions).
    S512,
}

impl SizeClass {
    /// All size classes in increasing order.
    pub const ALL: [SizeClass; 4] = [
        SizeClass::S64,
        SizeClass::S128,
        SizeClass::S256,
        SizeClass::S512,
    ];

    /// Number of distinct size classes.
    pub const COUNT: usize = 4;

    /// Side length of the (square) crop in pixels.
    #[inline]
    pub const fn side(self) -> u32 {
        match self {
            SizeClass::S64 => 64,
            SizeClass::S128 => 128,
            SizeClass::S256 => 256,
            SizeClass::S512 => 512,
        }
    }

    /// Pixel area of the crop.
    #[inline]
    pub const fn pixels(self) -> u64 {
        let s = self.side() as u64;
        s * s
    }

    /// Dense index in `0..SizeClass::COUNT`, for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            SizeClass::S64 => 0,
            SizeClass::S128 => 1,
            SizeClass::S256 => 2,
            SizeClass::S512 => 3,
        }
    }

    /// The size class with dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= SizeClass::COUNT`.
    #[inline]
    pub fn from_index(i: usize) -> SizeClass {
        SizeClass::ALL[i]
    }

    /// Quantizes a region of `width`×`height` pixels to the smallest class
    /// whose side covers the region's long side; regions beyond 512 are
    /// downsized to [`SizeClass::S512`].
    pub fn quantize(width: f64, height: f64) -> SizeClass {
        let long = width.max(height);
        for class in SizeClass::ALL {
            if long <= class.side() as f64 {
                return class;
            }
        }
        SizeClass::S512
    }

    /// The next larger class, or `None` for [`SizeClass::S512`].
    pub fn next_up(self) -> Option<SizeClass> {
        match self {
            SizeClass::S64 => Some(SizeClass::S128),
            SizeClass::S128 => Some(SizeClass::S256),
            SizeClass::S256 => Some(SizeClass::S512),
            SizeClass::S512 => None,
        }
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.side())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_boundaries() {
        assert_eq!(SizeClass::quantize(64.0, 64.0), SizeClass::S64);
        assert_eq!(SizeClass::quantize(64.1, 10.0), SizeClass::S128);
        assert_eq!(SizeClass::quantize(128.0, 128.0), SizeClass::S128);
        assert_eq!(SizeClass::quantize(129.0, 1.0), SizeClass::S256);
        assert_eq!(SizeClass::quantize(512.0, 12.0), SizeClass::S512);
        assert_eq!(SizeClass::quantize(513.0, 12.0), SizeClass::S512);
    }

    #[test]
    fn quantize_uses_long_side() {
        assert_eq!(SizeClass::quantize(10.0, 200.0), SizeClass::S256);
        assert_eq!(SizeClass::quantize(200.0, 10.0), SizeClass::S256);
    }

    #[test]
    fn index_round_trip() {
        for class in SizeClass::ALL {
            assert_eq!(SizeClass::from_index(class.index()), class);
        }
    }

    #[test]
    fn ordering_matches_side() {
        assert!(SizeClass::S64 < SizeClass::S128);
        assert!(SizeClass::S128 < SizeClass::S256);
        assert!(SizeClass::S256 < SizeClass::S512);
    }

    #[test]
    fn next_up_chain() {
        assert_eq!(SizeClass::S64.next_up(), Some(SizeClass::S128));
        assert_eq!(SizeClass::S512.next_up(), None);
    }

    #[test]
    fn display_is_side() {
        assert_eq!(SizeClass::S256.to_string(), "256");
    }
}
