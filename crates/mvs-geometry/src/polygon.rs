//! Convex polygons for camera fields of view.

use crate::{BBox, Point2};
use serde::{Deserialize, Serialize};

/// A convex polygon with counter-clockwise winding.
///
/// Used for camera view footprints on the world ground plane: the simulator
/// intersects object positions with each camera's view polygon to decide
/// which cameras can see an object (its *coverage set*).
///
/// # Examples
///
/// ```
/// use mvs_geometry::{Point2, Polygon};
///
/// let tri = Polygon::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(4.0, 0.0),
///     Point2::new(0.0, 4.0),
/// ]).unwrap();
/// assert!(tri.contains(Point2::new(1.0, 1.0)));
/// assert!(!tri.contains(Point2::new(3.0, 3.0)));
/// assert_eq!(tri.area(), 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point2>,
}

/// Error returned when constructing an invalid [`Polygon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices were supplied.
    TooFewVertices,
    /// A vertex coordinate was NaN or infinite.
    NonFinite,
    /// The vertices were not in counter-clockwise convex position.
    NotConvexCcw,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least three vertices"),
            PolygonError::NonFinite => write!(f, "polygon vertex was not finite"),
            PolygonError::NotConvexCcw => {
                write!(f, "polygon vertices were not convex counter-clockwise")
            }
        }
    }
}

impl std::error::Error for PolygonError {}

impl Polygon {
    /// Creates a convex polygon from counter-clockwise vertices.
    ///
    /// # Errors
    ///
    /// Returns an error when fewer than three vertices are supplied, a
    /// coordinate is not finite, or the winding is not convex
    /// counter-clockwise.
    pub fn new(vertices: Vec<Point2>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(PolygonError::NonFinite);
        }
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let c = vertices[(i + 2) % n];
            if (b - a).cross(c - b) < 0.0 {
                return Err(PolygonError::NotConvexCcw);
            }
        }
        Ok(Polygon { vertices })
    }

    /// An axis-aligned rectangle polygon.
    pub fn rectangle(b: &BBox) -> Self {
        Polygon {
            vertices: vec![
                Point2::new(b.x1(), b.y1()),
                Point2::new(b.x2(), b.y1()),
                Point2::new(b.x2(), b.y2()),
                Point2::new(b.x1(), b.y2()),
            ],
        }
    }

    /// A camera "view wedge": an isosceles trapezoid opening from `apex` in
    /// direction `heading` (radians), with half-angle `half_fov`, starting at
    /// `near` and ending at `far` distance.
    ///
    /// # Panics
    ///
    /// Panics if `far <= near`, `near < 0`, or `half_fov` is not in
    /// `(0, PI/2)`.
    pub fn view_wedge(apex: Point2, heading: f64, half_fov: f64, near: f64, far: f64) -> Self {
        assert!(far > near && near >= 0.0, "need 0 <= near < far");
        assert!(
            half_fov > 0.0 && half_fov < std::f64::consts::FRAC_PI_2,
            "half_fov must be in (0, PI/2)"
        );
        let dir = Point2::new(heading.cos(), heading.sin());
        let left = dir.rotated(half_fov);
        let right = dir.rotated(-half_fov);
        let scale = 1.0 / half_fov.cos();
        // CCW order: near-right, far-right, far-left, near-left.
        let vertices = vec![
            apex + right * (near * scale),
            apex + right * (far * scale),
            apex + left * (far * scale),
            apex + left * (near * scale),
        ];
        Polygon::new(vertices).expect("wedge construction yields convex CCW vertices")
    }

    /// The polygon's vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Polygon area (shoelace formula).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            acc += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        acc / 2.0
    }

    /// Whether `p` lies inside (boundary inclusive).
    pub fn contains(&self, p: Point2) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if (b - a).cross(p - a) < -1e-9 {
                return false;
            }
        }
        true
    }

    /// The polygon's axis-aligned bounding box.
    pub fn bbox(&self) -> BBox {
        BBox::hull(self.vertices.iter().copied()).expect("polygon has at least three vertices")
    }

    /// Exact overlap test with another convex polygon (separating-axis
    /// theorem). Touching boundaries count as intersecting.
    ///
    /// Two convex polygons are disjoint iff some edge normal of either
    /// polygon separates their vertex projections, so checking every edge
    /// normal of both polygons is a complete test — no sampling, unlike
    /// [`Polygon::overlap_area_approx`]. Used to build camera view-overlap
    /// graphs, where a false negative would split an overlapping pair into
    /// different shards.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvs_geometry::{BBox, Polygon};
    ///
    /// let a = Polygon::rectangle(&BBox::new(0.0, 0.0, 4.0, 4.0)?);
    /// let b = Polygon::rectangle(&BBox::new(3.0, 3.0, 7.0, 7.0)?);
    /// let c = Polygon::rectangle(&BBox::new(5.0, 5.0, 9.0, 9.0)?);
    /// assert!(a.intersects(&b));
    /// assert!(!a.intersects(&c));
    /// # Ok::<(), mvs_geometry::BBoxError>(())
    /// ```
    pub fn intersects(&self, other: &Polygon) -> bool {
        !self.separates(other) && !other.separates(self)
    }

    /// Whether any edge normal of `self` is a separating axis: all of
    /// `other`'s vertices lie strictly outside that edge's half-plane.
    fn separates(&self, other: &Polygon) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let edge = self.vertices[(i + 1) % n] - a;
            // CCW winding: the interior is on the left of every edge, so a
            // strictly negative cross product for *every* vertex of `other`
            // puts it entirely in the outside half-plane.
            if other.vertices.iter().all(|&v| edge.cross(v - a) < 0.0) {
                return true;
            }
        }
        false
    }

    /// Approximate overlap area with `other`, estimated on a `samples`×
    /// `samples` grid over this polygon's bounding box.
    ///
    /// Used only for reporting view-overlap statistics, where Monte-Carlo
    /// accuracy is sufficient.
    pub fn overlap_area_approx(&self, other: &Polygon, samples: usize) -> f64 {
        let bb = self.bbox();
        if samples == 0 || bb.area() == 0.0 {
            return 0.0;
        }
        let mut hits = 0usize;
        for i in 0..samples {
            for j in 0..samples {
                let p = Point2::new(
                    bb.x1() + bb.width() * (i as f64 + 0.5) / samples as f64,
                    bb.y1() + bb.height() * (j as f64 + 0.5) / samples as f64,
                );
                if self.contains(p) && other.contains(p) {
                    hits += 1;
                }
            }
        }
        bb.area() * hits as f64 / (samples * samples) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_input() {
        assert!(Polygon::new(vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]).is_err());
        // Clockwise square.
        assert!(Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 0.0),
        ])
        .is_err());
    }

    #[test]
    fn rectangle_contains_and_area() {
        let r = Polygon::rectangle(&BBox::new(0.0, 0.0, 4.0, 2.0).unwrap());
        assert_eq!(r.area(), 8.0);
        assert!(r.contains(Point2::new(2.0, 1.0)));
        assert!(r.contains(Point2::new(0.0, 0.0))); // boundary
        assert!(!r.contains(Point2::new(5.0, 1.0)));
    }

    #[test]
    fn wedge_geometry() {
        let w = Polygon::view_wedge(Point2::ORIGIN, 0.0, 0.5, 1.0, 10.0);
        // Points along the heading inside [near, far] are inside.
        assert!(w.contains(Point2::new(5.0, 0.0)));
        assert!(!w.contains(Point2::new(0.5, 0.0))); // before near plane
        assert!(!w.contains(Point2::new(12.0, 0.0))); // beyond far plane
        assert!(!w.contains(Point2::new(5.0, 5.0))); // outside half-angle
        assert!(w.area() > 0.0);
    }

    #[test]
    fn bbox_encloses_polygon() {
        let w = Polygon::view_wedge(Point2::new(3.0, 4.0), 1.0, 0.6, 0.5, 8.0);
        let bb = w.bbox();
        for &v in w.vertices() {
            assert!(bb.contains_point(v));
        }
    }

    #[test]
    fn overlap_approx_identical() {
        let r = Polygon::rectangle(&BBox::new(0.0, 0.0, 10.0, 10.0).unwrap());
        let overlap = r.overlap_area_approx(&r, 50);
        assert!((overlap - 100.0).abs() < 1.0);
    }

    #[test]
    fn overlap_approx_disjoint() {
        let a = Polygon::rectangle(&BBox::new(0.0, 0.0, 1.0, 1.0).unwrap());
        let b = Polygon::rectangle(&BBox::new(5.0, 5.0, 6.0, 6.0).unwrap());
        assert_eq!(a.overlap_area_approx(&b, 20), 0.0);
    }

    #[test]
    fn intersects_basic_cases() {
        let a = Polygon::rectangle(&BBox::new(0.0, 0.0, 4.0, 4.0).unwrap());
        let overlapping = Polygon::rectangle(&BBox::new(2.0, 2.0, 6.0, 6.0).unwrap());
        let disjoint = Polygon::rectangle(&BBox::new(5.0, 0.0, 9.0, 4.0).unwrap());
        let touching = Polygon::rectangle(&BBox::new(4.0, 0.0, 8.0, 4.0).unwrap());
        let inside = Polygon::rectangle(&BBox::new(1.0, 1.0, 2.0, 2.0).unwrap());
        assert!(a.intersects(&overlapping));
        assert!(overlapping.intersects(&a));
        assert!(!a.intersects(&disjoint));
        assert!(!disjoint.intersects(&a));
        assert!(a.intersects(&touching), "shared edge counts as overlap");
        assert!(a.intersects(&inside), "containment is overlap");
        assert!(inside.intersects(&a));
        assert!(a.intersects(&a));
    }

    #[test]
    fn intersects_needs_both_polygons_axes() {
        // Two rotated wedges whose bounding boxes overlap but whose shapes
        // do not: only an edge normal of one of them separates, so a
        // one-sided SAT would report a false positive.
        let a = Polygon::view_wedge(Point2::ORIGIN, std::f64::consts::FRAC_PI_4, 0.3, 1.0, 10.0);
        let b = Polygon::view_wedge(
            Point2::new(10.0, 0.0),
            3.0 * std::f64::consts::FRAC_PI_4,
            0.3,
            1.0,
            10.0,
        );
        assert!(
            a.bbox().iou(&b.bbox()) > 0.0,
            "test premise: bounding boxes overlap"
        );
        assert!(a.intersects(&b) == b.intersects(&a));
    }

    #[test]
    fn intersects_agrees_with_sampled_overlap() {
        // SAT vs. the Monte-Carlo overlap estimator on a grid of wedges:
        // wherever sampling finds area, SAT must agree; where SAT reports
        // disjoint, sampling must find (almost) nothing.
        let mk = |x: f64, heading: f64| {
            Polygon::view_wedge(Point2::new(x, 0.0), heading, 0.48, 4.0, 60.0)
        };
        for dx in [0.0, 30.0, 60.0, 90.0, 150.0] {
            for heading in [0.0, 1.2, std::f64::consts::PI] {
                let a = mk(0.0, 0.0);
                let b = mk(dx, heading);
                let sampled = a.overlap_area_approx(&b, 60);
                if sampled > 1.0 {
                    assert!(
                        a.intersects(&b),
                        "dx={dx} heading={heading}: sampled {sampled}"
                    );
                }
                if !a.intersects(&b) {
                    assert!(
                        sampled <= 1.0,
                        "dx={dx} heading={heading}: sampled {sampled}"
                    );
                }
            }
        }
    }
}
