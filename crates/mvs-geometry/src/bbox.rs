//! Axis-aligned bounding boxes.

use crate::{FrameDims, Point2};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when constructing an invalid [`BBox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BBoxError {
    /// A corner coordinate was NaN or infinite.
    NonFinite,
    /// `x2 < x1` or `y2 < y1`.
    Inverted,
}

impl fmt::Display for BBoxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BBoxError::NonFinite => write!(f, "bounding box coordinate was not finite"),
            BBoxError::Inverted => write!(f, "bounding box corners were inverted"),
        }
    }
}

impl std::error::Error for BBoxError {}

/// An axis-aligned bounding box in pixel (or world) coordinates.
///
/// Invariants: all coordinates are finite and `x1 <= x2`, `y1 <= y2`.
/// Degenerate (zero-area) boxes are allowed; they behave sensibly under
/// intersection and IoU (an empty box has IoU 0 with everything).
///
/// # Examples
///
/// ```
/// use mvs_geometry::BBox;
///
/// let a = BBox::new(0.0, 0.0, 10.0, 10.0)?;
/// let b = BBox::new(5.0, 5.0, 15.0, 15.0)?;
/// assert_eq!(a.intersection_area(&b), 25.0);
/// assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-12);
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    x1: f64,
    y1: f64,
    x2: f64,
    y2: f64,
}

impl BBox {
    /// Creates a bounding box from its top-left `(x1, y1)` and bottom-right
    /// `(x2, y2)` corners.
    ///
    /// # Errors
    ///
    /// Returns [`BBoxError::NonFinite`] if any coordinate is NaN/infinite and
    /// [`BBoxError::Inverted`] if the corners are swapped.
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Result<Self, BBoxError> {
        if !(x1.is_finite() && y1.is_finite() && x2.is_finite() && y2.is_finite()) {
            return Err(BBoxError::NonFinite);
        }
        if x2 < x1 || y2 < y1 {
            return Err(BBoxError::Inverted);
        }
        Ok(BBox { x1, y1, x2, y2 })
    }

    /// Creates a bounding box from its centre and dimensions.
    ///
    /// Negative dimensions are clamped to zero.
    ///
    /// # Panics
    ///
    /// Panics if any input is not finite.
    pub fn from_center(center: Point2, width: f64, height: f64) -> Self {
        let w = width.max(0.0) / 2.0;
        let h = height.max(0.0) / 2.0;
        BBox::new(center.x - w, center.y - h, center.x + w, center.y + h)
            .expect("finite centre and dimensions produce a valid box")
    }

    /// The smallest box containing every point in `points`, or `None` when
    /// the iterator is empty.
    pub fn hull<I: IntoIterator<Item = Point2>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let (mut x1, mut y1, mut x2, mut y2) = (first.x, first.y, first.x, first.y);
        for p in it {
            x1 = x1.min(p.x);
            y1 = y1.min(p.y);
            x2 = x2.max(p.x);
            y2 = y2.max(p.y);
        }
        BBox::new(x1, y1, x2, y2).ok()
    }

    /// Left edge.
    #[inline]
    pub fn x1(&self) -> f64 {
        self.x1
    }

    /// Top edge.
    #[inline]
    pub fn y1(&self) -> f64 {
        self.y1
    }

    /// Right edge.
    #[inline]
    pub fn x2(&self) -> f64 {
        self.x2
    }

    /// Bottom edge.
    #[inline]
    pub fn y2(&self) -> f64 {
        self.y2
    }

    /// Box width (always non-negative).
    #[inline]
    pub fn width(&self) -> f64 {
        self.x2 - self.x1
    }

    /// Box height (always non-negative).
    #[inline]
    pub fn height(&self) -> f64 {
        self.y2 - self.y1
    }

    /// Box area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)
    }

    /// The longer of width and height — the quantity size quantization acts on.
    #[inline]
    pub fn long_side(&self) -> f64 {
        self.width().max(self.height())
    }

    /// The four corner coordinates as `[x1, y1, x2, y2]`.
    ///
    /// This is the feature/target layout used by the cross-camera regression
    /// models.
    #[inline]
    pub fn to_array(&self) -> [f64; 4] {
        [self.x1, self.y1, self.x2, self.y2]
    }

    /// Builds a box from the `[x1, y1, x2, y2]` layout, repairing inverted
    /// corners by sorting them (regression output may be slightly inverted).
    ///
    /// # Errors
    ///
    /// Returns [`BBoxError::NonFinite`] if any coordinate is NaN/infinite.
    pub fn from_array_lenient(a: [f64; 4]) -> Result<Self, BBoxError> {
        let (x1, x2) = if a[0] <= a[2] {
            (a[0], a[2])
        } else {
            (a[2], a[0])
        };
        let (y1, y2) = if a[1] <= a[3] {
            (a[1], a[3])
        } else {
            (a[3], a[1])
        };
        BBox::new(x1, y1, x2, y2)
    }

    /// Whether `p` lies inside the box (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: Point2) -> bool {
        p.x >= self.x1 && p.x <= self.x2 && p.y >= self.y1 && p.y <= self.y2
    }

    /// Whether `other` lies entirely inside the box.
    #[inline]
    pub fn contains_box(&self, other: &BBox) -> bool {
        other.x1 >= self.x1 && other.y1 >= self.y1 && other.x2 <= self.x2 && other.y2 <= self.y2
    }

    /// The overlap region of two boxes, or `None` when they are disjoint.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        let x1 = self.x1.max(other.x1);
        let y1 = self.y1.max(other.y1);
        let x2 = self.x2.min(other.x2);
        let y2 = self.y2.min(other.y2);
        if x2 > x1 && y2 > y1 {
            Some(BBox { x1, y1, x2, y2 })
        } else {
            None
        }
    }

    /// Area of the overlap region (zero when disjoint).
    #[inline]
    pub fn intersection_area(&self, other: &BBox) -> f64 {
        let w = (self.x2.min(other.x2) - self.x1.max(other.x1)).max(0.0);
        let h = (self.y2.min(other.y2) - self.y1.max(other.y1)).max(0.0);
        w * h
    }

    /// Intersection over union, in `[0, 1]`.
    ///
    /// Two boxes with zero union area have IoU 0.
    pub fn iou(&self, other: &BBox) -> f64 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union > 0.0 {
            inter / union
        } else {
            0.0
        }
    }

    /// The smallest box containing both boxes.
    pub fn union_hull(&self, other: &BBox) -> BBox {
        BBox {
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
            x2: self.x2.max(other.x2),
            y2: self.y2.max(other.y2),
        }
    }

    /// Translates the box by the displacement `d`.
    pub fn translated(&self, d: Point2) -> BBox {
        BBox {
            x1: self.x1 + d.x,
            y1: self.y1 + d.y,
            x2: self.x2 + d.x,
            y2: self.y2 + d.y,
        }
    }

    /// Scales the box about its centre by `factor` (must be non-negative).
    pub fn scaled_about_center(&self, factor: f64) -> BBox {
        let c = self.center();
        BBox::from_center(c, self.width() * factor, self.height() * factor)
    }

    /// Returns a square box of side `side` centred on this box's centre.
    ///
    /// This is the centred expansion performed by tracking-based slicing when
    /// a predicted region is grown to its quantized [`SizeClass`] side.
    ///
    /// [`SizeClass`]: crate::SizeClass
    pub fn expanded_to_square(&self, side: f64) -> BBox {
        BBox::from_center(self.center(), side.max(0.0), side.max(0.0))
    }

    /// Clamps the box to the frame, returning `None` if nothing remains.
    pub fn clamped_to(&self, frame: FrameDims) -> Option<BBox> {
        let x1 = self.x1.max(0.0);
        let y1 = self.y1.max(0.0);
        let x2 = self.x2.min(frame.width as f64);
        let y2 = self.y2.min(frame.height as f64);
        if x2 > x1 && y2 > y1 {
            Some(BBox { x1, y1, x2, y2 })
        } else {
            None
        }
    }

    /// Fraction of this box's area that lies inside `other`, in `[0, 1]`.
    pub fn coverage_by(&self, other: &BBox) -> f64 {
        let a = self.area();
        if a > 0.0 {
            self.intersection_area(other) / a
        } else {
            0.0
        }
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1},{:.1}..{:.1},{:.1}]",
            self.x1, self.y1, self.x2, self.y2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x1: f64, y1: f64, x2: f64, y2: f64) -> BBox {
        BBox::new(x1, y1, x2, y2).unwrap()
    }

    #[test]
    fn rejects_invalid_boxes() {
        assert_eq!(
            BBox::new(f64::NAN, 0.0, 1.0, 1.0),
            Err(BBoxError::NonFinite)
        );
        assert_eq!(BBox::new(2.0, 0.0, 1.0, 1.0), Err(BBoxError::Inverted));
        assert_eq!(BBox::new(0.0, 2.0, 1.0, 1.0), Err(BBoxError::Inverted));
    }

    #[test]
    fn degenerate_box_is_allowed() {
        let b = bb(1.0, 1.0, 1.0, 1.0);
        assert_eq!(b.area(), 0.0);
        assert_eq!(b.iou(&bb(0.0, 0.0, 2.0, 2.0)), 0.0);
    }

    #[test]
    fn iou_identical_is_one() {
        let b = bb(3.0, 4.0, 10.0, 20.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = bb(0.0, 0.0, 1.0, 1.0);
        let b = bb(2.0, 2.0, 3.0, 3.0);
        assert_eq!(a.iou(&b), 0.0);
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn iou_is_symmetric() {
        let a = bb(0.0, 0.0, 10.0, 10.0);
        let b = bb(5.0, 2.0, 16.0, 9.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-15);
    }

    #[test]
    fn intersection_matches_area() {
        let a = bb(0.0, 0.0, 10.0, 10.0);
        let b = bb(5.0, 5.0, 15.0, 15.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, bb(5.0, 5.0, 10.0, 10.0));
        assert_eq!(i.area(), a.intersection_area(&b));
    }

    #[test]
    fn from_center_round_trip() {
        let b = BBox::from_center(Point2::new(50.0, 60.0), 20.0, 10.0);
        assert_eq!(b.center(), Point2::new(50.0, 60.0));
        assert_eq!(b.width(), 20.0);
        assert_eq!(b.height(), 10.0);
    }

    #[test]
    fn expansion_to_square_keeps_center() {
        let b = bb(10.0, 20.0, 40.0, 30.0);
        let e = b.expanded_to_square(128.0);
        assert_eq!(e.center(), b.center());
        assert_eq!(e.width(), 128.0);
        assert_eq!(e.height(), 128.0);
        assert!(e.contains_box(&b));
    }

    #[test]
    fn clamping_to_frame() {
        let frame = FrameDims::new(1280, 704);
        let b = bb(-10.0, -10.0, 100.0, 100.0);
        let c = b.clamped_to(frame).unwrap();
        assert_eq!(c, bb(0.0, 0.0, 100.0, 100.0));
        assert!(bb(-20.0, -20.0, -1.0, -1.0).clamped_to(frame).is_none());
    }

    #[test]
    fn hull_of_points() {
        let h = BBox::hull([
            Point2::new(3.0, 1.0),
            Point2::new(-1.0, 5.0),
            Point2::new(2.0, 2.0),
        ])
        .unwrap();
        assert_eq!(h, bb(-1.0, 1.0, 3.0, 5.0));
        assert!(BBox::hull(std::iter::empty()).is_none());
    }

    #[test]
    fn coverage_fraction() {
        let small = bb(0.0, 0.0, 2.0, 2.0);
        let big = bb(0.0, 0.0, 10.0, 10.0);
        assert_eq!(small.coverage_by(&big), 1.0);
        assert_eq!(big.coverage_by(&small), 0.04);
    }

    #[test]
    fn lenient_array_round_trip_repairs_inversion() {
        let b = BBox::from_array_lenient([10.0, 8.0, 2.0, 4.0]).unwrap();
        assert_eq!(b, bb(2.0, 4.0, 10.0, 8.0));
    }

    #[test]
    fn translation_preserves_size() {
        let b = bb(0.0, 0.0, 4.0, 6.0);
        let t = b.translated(Point2::new(10.0, -2.0));
        assert_eq!(t.width(), b.width());
        assert_eq!(t.height(), b.height());
        assert_eq!(t.x1(), 10.0);
        assert_eq!(t.y1(), -2.0);
    }
}
