//! Projective (homography) transforms.

use crate::{BBox, Point2};
use serde::{Deserialize, Serialize};

/// A 3×3 projective transform of the plane (a homography).
///
/// Stored row-major. Applying the transform maps homogeneous coordinates
/// `(x, y, 1)` through the matrix and divides by the resulting `w`.
///
/// The paper's homography *baseline* (Fig. 11) estimates one of these per
/// camera pair; the estimation itself lives in `mvs-ml`, while this type
/// provides representation, composition, inversion, and application.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{Point2, Projective2};
///
/// let t = Projective2::translation(10.0, -5.0);
/// assert_eq!(t.apply(Point2::new(1.0, 2.0)), Some(Point2::new(11.0, -3.0)));
/// let back = t.inverse().unwrap();
/// assert_eq!(back.apply(Point2::new(11.0, -3.0)), Some(Point2::new(1.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projective2 {
    m: [[f64; 3]; 3],
}

impl Projective2 {
    /// The identity transform.
    pub const IDENTITY: Projective2 = Projective2 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Creates a transform from a row-major 3×3 matrix.
    #[inline]
    pub const fn from_matrix(m: [[f64; 3]; 3]) -> Self {
        Projective2 { m }
    }

    /// A pure translation.
    pub fn translation(dx: f64, dy: f64) -> Self {
        Projective2 {
            m: [[1.0, 0.0, dx], [0.0, 1.0, dy], [0.0, 0.0, 1.0]],
        }
    }

    /// A uniform scale about the origin.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero (the transform would be singular).
    pub fn scale(s: f64) -> Self {
        assert!(s != 0.0, "scale factor must be non-zero");
        Projective2 {
            m: [[s, 0.0, 0.0], [0.0, s, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// A rotation about the origin by `angle` radians.
    pub fn rotation(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Projective2 {
            m: [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// The row-major matrix.
    #[inline]
    pub fn matrix(&self) -> &[[f64; 3]; 3] {
        &self.m
    }

    /// Applies the transform to a point.
    ///
    /// Returns `None` when the point maps to infinity (`w ≈ 0`) or the
    /// result is not finite.
    pub fn apply(&self, p: Point2) -> Option<Point2> {
        let x = self.m[0][0] * p.x + self.m[0][1] * p.y + self.m[0][2];
        let y = self.m[1][0] * p.x + self.m[1][1] * p.y + self.m[1][2];
        let w = self.m[2][0] * p.x + self.m[2][1] * p.y + self.m[2][2];
        if w.abs() < 1e-12 {
            return None;
        }
        let out = Point2::new(x / w, y / w);
        out.is_finite().then_some(out)
    }

    /// Maps a bounding box by transforming its four corners and taking their
    /// hull. Returns `None` when any corner maps to infinity.
    ///
    /// Note the paper's observation that a ground-plane homography cannot
    /// represent full 3-D bounding-box mappings — this method is exactly the
    /// approximation the homography baseline uses.
    pub fn apply_bbox(&self, b: &BBox) -> Option<BBox> {
        let corners = [
            Point2::new(b.x1(), b.y1()),
            Point2::new(b.x2(), b.y1()),
            Point2::new(b.x2(), b.y2()),
            Point2::new(b.x1(), b.y2()),
        ];
        let mut mapped = Vec::with_capacity(4);
        for c in corners {
            mapped.push(self.apply(c)?);
        }
        BBox::hull(mapped)
    }

    /// Composition: `self.compose(other)` applies `other` first, then `self`.
    pub fn compose(&self, other: &Projective2) -> Projective2 {
        let mut m = [[0.0; 3]; 3];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[i][k] * other.m[k][j]).sum();
            }
        }
        Projective2 { m }
    }

    /// Matrix determinant.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// The inverse transform, or `None` when singular.
    pub fn inverse(&self) -> Option<Projective2> {
        let d = self.det();
        if d.abs() < 1e-12 {
            return None;
        }
        let m = &self.m;
        let inv = [
            [
                (m[1][1] * m[2][2] - m[1][2] * m[2][1]) / d,
                (m[0][2] * m[2][1] - m[0][1] * m[2][2]) / d,
                (m[0][1] * m[1][2] - m[0][2] * m[1][1]) / d,
            ],
            [
                (m[1][2] * m[2][0] - m[1][0] * m[2][2]) / d,
                (m[0][0] * m[2][2] - m[0][2] * m[2][0]) / d,
                (m[0][2] * m[1][0] - m[0][0] * m[1][2]) / d,
            ],
            [
                (m[1][0] * m[2][1] - m[1][1] * m[2][0]) / d,
                (m[0][1] * m[2][0] - m[0][0] * m[2][1]) / d,
                (m[0][0] * m[1][1] - m[0][1] * m[1][0]) / d,
            ],
        ];
        Some(Projective2 { m: inv })
    }
}

impl Default for Projective2 {
    fn default() -> Self {
        Projective2::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Point2, b: Point2) {
        assert!(a.distance(b) < 1e-9, "{a:?} vs {b:?}");
    }

    #[test]
    fn identity_is_noop() {
        let p = Point2::new(3.0, -7.0);
        assert_eq!(Projective2::IDENTITY.apply(p), Some(p));
    }

    #[test]
    fn translation_and_inverse() {
        let t = Projective2::translation(5.0, 2.0);
        let p = Point2::new(1.0, 1.0);
        let q = t.apply(p).unwrap();
        assert_close(q, Point2::new(6.0, 3.0));
        assert_close(t.inverse().unwrap().apply(q).unwrap(), p);
    }

    #[test]
    fn composition_order() {
        // Scale then translate != translate then scale.
        let s = Projective2::scale(2.0);
        let t = Projective2::translation(1.0, 0.0);
        let p = Point2::new(1.0, 0.0);
        // t ∘ s : scale first.
        assert_close(t.compose(&s).apply(p).unwrap(), Point2::new(3.0, 0.0));
        // s ∘ t : translate first.
        assert_close(s.compose(&t).apply(p).unwrap(), Point2::new(4.0, 0.0));
    }

    #[test]
    fn rotation_quarter_turn() {
        let r = Projective2::rotation(std::f64::consts::FRAC_PI_2);
        assert_close(
            r.apply(Point2::new(1.0, 0.0)).unwrap(),
            Point2::new(0.0, 1.0),
        );
    }

    #[test]
    fn singular_has_no_inverse() {
        let z = Projective2::from_matrix([[1.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 0.0, 1.0]]);
        assert!(z.inverse().is_none());
    }

    #[test]
    fn point_at_infinity_is_none() {
        // Bottom row sends y=1 to w=0.
        let h = Projective2::from_matrix([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, -1.0, 1.0]]);
        assert!(h.apply(Point2::new(0.0, 1.0)).is_none());
    }

    #[test]
    fn bbox_mapping_under_translation() {
        let t = Projective2::translation(10.0, 20.0);
        let b = BBox::new(0.0, 0.0, 4.0, 4.0).unwrap();
        let mapped = t.apply_bbox(&b).unwrap();
        assert_eq!(mapped, BBox::new(10.0, 20.0, 14.0, 24.0).unwrap());
    }

    #[test]
    fn projective_warp_preserves_hull_property() {
        let h =
            Projective2::from_matrix([[1.0, 0.1, 0.0], [0.05, 1.0, 0.0], [0.0001, 0.0002, 1.0]]);
        let b = BBox::new(100.0, 100.0, 200.0, 180.0).unwrap();
        let mapped = h.apply_bbox(&b).unwrap();
        // Every mapped corner is inside the hull.
        for c in [Point2::new(b.x1(), b.y1()), Point2::new(b.x2(), b.y2())] {
            assert!(mapped.contains_point(h.apply(c).unwrap()));
        }
    }
}
