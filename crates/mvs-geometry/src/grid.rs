//! Cell grids over a camera frame.
//!
//! The distributed stage of BALB divides each camera frame into a grid of
//! pixel-level cells, computes a coverage set per cell, and assigns each cell
//! to the highest-priority camera that can observe it (Fig. 8 of the paper).
//! [`Grid`] provides the frame↔cell bookkeeping for those masks.

use crate::{BBox, FrameDims, Point2};
use serde::{Deserialize, Serialize};

/// Index of a cell within a [`Grid`], in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellIndex(pub usize);

/// A uniform cell grid laid over a camera frame.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{FrameDims, Grid, Point2};
///
/// let grid = Grid::new(FrameDims::new(1280, 704), 64);
/// assert_eq!(grid.cols(), 20);
/// assert_eq!(grid.rows(), 11);
/// let cell = grid.cell_at(Point2::new(100.0, 100.0)).unwrap();
/// assert!(grid.cell_bbox(cell).contains_point(Point2::new(100.0, 100.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    frame: FrameDims,
    cell_size: u32,
    cols: usize,
    rows: usize,
}

impl Grid {
    /// Creates a grid of `cell_size`×`cell_size` pixel cells over `frame`.
    /// Edge cells are truncated to the frame boundary.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is zero or the frame is empty.
    pub fn new(frame: FrameDims, cell_size: u32) -> Self {
        assert!(cell_size > 0, "cell size must be positive");
        assert!(
            frame.width > 0 && frame.height > 0,
            "frame must be non-empty"
        );
        let cols = frame.width.div_ceil(cell_size) as usize;
        let rows = frame.height.div_ceil(cell_size) as usize;
        Grid {
            frame,
            cell_size,
            cols,
            rows,
        }
    }

    /// Number of cell columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of cell rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// True when the grid has no cells (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The frame this grid covers.
    #[inline]
    pub fn frame(&self) -> FrameDims {
        self.frame
    }

    /// Cell side length in pixels.
    #[inline]
    pub fn cell_size(&self) -> u32 {
        self.cell_size
    }

    /// The cell containing `p`, or `None` if `p` is outside the frame.
    pub fn cell_at(&self, p: Point2) -> Option<CellIndex> {
        if p.x < 0.0 || p.y < 0.0 {
            return None;
        }
        if p.x >= self.frame.width as f64 || p.y >= self.frame.height as f64 {
            return None;
        }
        let col = (p.x / self.cell_size as f64) as usize;
        let row = (p.y / self.cell_size as f64) as usize;
        Some(CellIndex(row * self.cols + col))
    }

    /// Pixel bounding box of a cell (truncated at the frame edge).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn cell_bbox(&self, cell: CellIndex) -> BBox {
        assert!(cell.0 < self.len(), "cell index out of range");
        let row = cell.0 / self.cols;
        let col = cell.0 % self.cols;
        let x1 = (col as u32 * self.cell_size) as f64;
        let y1 = (row as u32 * self.cell_size) as f64;
        let x2 = ((col as u32 + 1) * self.cell_size).min(self.frame.width) as f64;
        let y2 = ((row as u32 + 1) * self.cell_size).min(self.frame.height) as f64;
        BBox::new(x1, y1, x2, y2).expect("cell bounds are valid by construction")
    }

    /// Centre point of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn cell_center(&self, cell: CellIndex) -> Point2 {
        self.cell_bbox(cell).center()
    }

    /// Iterates over every cell index.
    pub fn iter(&self) -> impl Iterator<Item = CellIndex> + '_ {
        (0..self.len()).map(CellIndex)
    }

    /// All cells whose pixel area overlaps `b`.
    pub fn cells_overlapping(&self, b: &BBox) -> Vec<CellIndex> {
        let Some(clamped) = b.clamped_to(self.frame) else {
            return Vec::new();
        };
        let cs = self.cell_size as f64;
        let c1 = (clamped.x1() / cs) as usize;
        let r1 = (clamped.y1() / cs) as usize;
        // Subtract an epsilon-free exclusive bound: a box whose edge lands
        // exactly on a cell border does not overlap the next cell.
        let c2 = (((clamped.x2() / cs).ceil() as usize).max(c1 + 1) - 1).min(self.cols - 1);
        let r2 = (((clamped.y2() / cs).ceil() as usize).max(r1 + 1) - 1).min(self.rows - 1);
        let mut out = Vec::with_capacity((c2 - c1 + 1) * (r2 - r1 + 1));
        for row in r1..=r2 {
            for col in c1..=c2 {
                out.push(CellIndex(row * self.cols + col));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_round_up() {
        let g = Grid::new(FrameDims::new(130, 65), 64);
        assert_eq!(g.cols(), 3);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn cell_lookup_and_bbox_agree() {
        let g = Grid::new(FrameDims::new(1280, 704), 64);
        for p in [
            Point2::new(0.0, 0.0),
            Point2::new(63.9, 63.9),
            Point2::new(64.0, 64.0),
            Point2::new(1279.0, 703.0),
        ] {
            let c = g.cell_at(p).unwrap();
            assert!(g.cell_bbox(c).contains_point(p), "point {p:?} cell {c:?}");
        }
    }

    #[test]
    fn out_of_frame_points_have_no_cell() {
        let g = Grid::new(FrameDims::new(100, 100), 10);
        assert!(g.cell_at(Point2::new(-1.0, 5.0)).is_none());
        assert!(g.cell_at(Point2::new(100.0, 5.0)).is_none());
        assert!(g.cell_at(Point2::new(5.0, 100.0)).is_none());
    }

    #[test]
    fn edge_cells_truncate_to_frame() {
        let g = Grid::new(FrameDims::new(100, 50), 64);
        let last = CellIndex(g.len() - 1);
        let b = g.cell_bbox(last);
        assert_eq!(b.x2(), 100.0);
        assert_eq!(b.y2(), 50.0);
    }

    #[test]
    fn cells_overlapping_box() {
        let g = Grid::new(FrameDims::new(100, 100), 10);
        let cells = g.cells_overlapping(&BBox::new(5.0, 5.0, 25.0, 15.0).unwrap());
        // Columns 0..=2, rows 0..=1 → 6 cells.
        assert_eq!(cells.len(), 6);
        // Exactly-on-border box should not bleed into the next cell.
        let cells = g.cells_overlapping(&BBox::new(0.0, 0.0, 10.0, 10.0).unwrap());
        assert_eq!(cells, vec![CellIndex(0)]);
    }

    #[test]
    fn cells_outside_frame_are_empty() {
        let g = Grid::new(FrameDims::new(100, 100), 10);
        let b = BBox::new(200.0, 200.0, 300.0, 300.0).unwrap();
        assert!(g.cells_overlapping(&b).is_empty());
    }

    #[test]
    fn iter_covers_all_cells() {
        let g = Grid::new(FrameDims::new(64, 64), 32);
        let all: Vec<_> = g.iter().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], CellIndex(0));
        assert_eq!(all[3], CellIndex(3));
    }
}
