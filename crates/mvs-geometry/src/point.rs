//! Points and displacements in the plane.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or displacement vector) in the 2-D plane.
///
/// `Point2` is deliberately used for both positions and displacements; the
/// workspace is small enough that a separate vector type would add friction
/// without catching real bugs.
///
/// # Examples
///
/// ```
/// use mvs_geometry::Point2;
///
/// let a = Point2::new(1.0, 2.0);
/// let b = Point2::new(4.0, 6.0);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!((b - a).norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// Euclidean norm when interpreting the point as a displacement.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (`z` component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        self + (other - self) * t
    }

    /// Returns the displacement scaled to unit length, or `None` for the
    /// zero vector.
    pub fn normalized(self) -> Option<Point2> {
        let n = self.norm();
        if n > 0.0 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Rotates the displacement by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Point2 {
        let (s, c) = angle.sin_cos();
        Point2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point2 {
    #[inline]
    fn add_assign(&mut self, rhs: Point2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Point2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    #[inline]
    fn div(self, rhs: f64) -> Point2 {
        Point2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    #[inline]
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<Point2> for (f64, f64) {
    #[inline]
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trip() {
        let a = Point2::new(3.0, -4.0);
        let b = Point2::new(-1.0, 2.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0 / 2.0, a);
        assert_eq!(-(-a), a);
    }

    #[test]
    fn norm_and_distance_agree() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(4.0, 5.0);
        assert_eq!(a.distance(b), (b - a).norm());
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn dot_and_cross() {
        let x = Point2::new(1.0, 0.0);
        let y = Point2::new(0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), 1.0);
        assert_eq!(y.cross(x), -1.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(5.0, -1.0));
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Point2::ORIGIN.normalized().is_none());
        let n = Point2::new(0.0, 5.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_quarter_turn() {
        let p = Point2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((p.x).abs() < 1e-12);
        assert!((p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tuple_conversions() {
        let p: Point2 = (2.0, 3.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.0, 3.0));
    }
}
