//! Structure-of-arrays bounding-box storage.
//!
//! The per-frame hot path (flow displacement lookup, new-region coverage,
//! pairwise IoU) spends its time in tight loops over many boxes. The AoS
//! [`BBox`] layout interleaves the four coordinates of each box with
//! whatever struct carries it, so those loops stride through memory and
//! defeat auto-vectorization. [`BBoxSoA`] stores each coordinate in its own
//! flat column; kernels iterate the columns directly and compile to
//! branch-light, vectorizable loops.
//!
//! Every kernel evaluates *exactly* the same floating-point expression, in
//! the same order, as the corresponding [`BBox`] method — SoA results are
//! bitwise identical to the scalar path (`f64::to_bits` equal), which the
//! differential proptests in `tests/soa_differential.rs` lock down.

use crate::{BBox, Point2};

/// A column-major batch of bounding boxes.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{BBox, BBoxSoA};
///
/// let boxes = [
///     BBox::new(0.0, 0.0, 10.0, 10.0)?,
///     BBox::new(5.0, 5.0, 15.0, 15.0)?,
/// ];
/// let soa = BBoxSoA::from_boxes(&boxes);
/// assert_eq!(soa.len(), 2);
/// // Kernels match the scalar methods bitwise.
/// assert_eq!(
///     soa.intersection_area(0, &boxes[1]).to_bits(),
///     boxes[0].intersection_area(&boxes[1]).to_bits()
/// );
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BBoxSoA {
    x1: Vec<f64>,
    y1: Vec<f64>,
    x2: Vec<f64>,
    y2: Vec<f64>,
}

impl BBoxSoA {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        BBoxSoA::default()
    }

    /// Builds a batch by copying the coordinates of `boxes` into columns.
    #[must_use]
    pub fn from_boxes(boxes: &[BBox]) -> Self {
        let mut soa = BBoxSoA::new();
        soa.extend_from_boxes(boxes);
        soa
    }

    /// Number of boxes in the batch.
    pub fn len(&self) -> usize {
        self.x1.len()
    }

    /// True when the batch holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.x1.is_empty()
    }

    /// Removes all boxes, keeping column capacity (the per-frame
    /// buffer-reuse path).
    pub fn clear(&mut self) {
        self.x1.clear();
        self.y1.clear();
        self.x2.clear();
        self.y2.clear();
    }

    /// Appends one box.
    pub fn push(&mut self, b: BBox) {
        self.x1.push(b.x1());
        self.y1.push(b.y1());
        self.x2.push(b.x2());
        self.y2.push(b.y2());
    }

    /// Appends every box in `boxes`, in order. Each column is extended in
    /// one pass from an exact-size iterator, so the copy reserves once per
    /// column and runs without per-element capacity checks.
    pub fn extend_from_boxes(&mut self, boxes: &[BBox]) {
        self.x1.extend(boxes.iter().map(|b| b.x1()));
        self.y1.extend(boxes.iter().map(|b| b.y1()));
        self.x2.extend(boxes.iter().map(|b| b.x2()));
        self.y2.extend(boxes.iter().map(|b| b.y2()));
    }

    /// Clears the batch and refills it from `boxes` — `from_boxes` without
    /// the allocation once capacity is warm.
    pub fn fill_from_boxes(&mut self, boxes: &[BBox]) {
        self.clear();
        self.extend_from_boxes(boxes);
    }

    /// The four coordinate columns `(x1, y1, x2, y2)`.
    pub fn columns(&self) -> (&[f64], &[f64], &[f64], &[f64]) {
        (&self.x1, &self.y1, &self.x2, &self.y2)
    }

    /// Reconstructs box `i` (the AoS adapter direction).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> BBox {
        BBox::new(self.x1[i], self.y1[i], self.x2[i], self.y2[i])
            .expect("columns only ever hold coordinates of valid boxes")
    }

    /// Area of box `i` — same expression as [`BBox::area`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn area(&self, i: usize) -> f64 {
        (self.x2[i] - self.x1[i]) * (self.y2[i] - self.y1[i])
    }

    /// Centre of box `i` — same expression as [`BBox::center`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn center(&self, i: usize) -> Point2 {
        Point2::new(
            (self.x1[i] + self.x2[i]) / 2.0,
            (self.y1[i] + self.y2[i]) / 2.0,
        )
    }

    /// Whether box `i` contains `p` (boundary inclusive) — same comparisons
    /// as [`BBox::contains_point`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn contains_point(&self, i: usize, p: Point2) -> bool {
        p.x >= self.x1[i] && p.x <= self.x2[i] && p.y >= self.y1[i] && p.y <= self.y2[i]
    }

    /// Overlap area of box `i` with `b` — same expression as
    /// [`BBox::intersection_area`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn intersection_area(&self, i: usize, b: &BBox) -> f64 {
        let w = (self.x2[i].min(b.x2()) - self.x1[i].max(b.x1())).max(0.0);
        let h = (self.y2[i].min(b.y2()) - self.y1[i].max(b.y1())).max(0.0);
        w * h
    }

    /// Pairwise IoU matrix: `out[i * other.len() + j]` is the IoU of box
    /// `i` of `self` with box `j` of `other`, bitwise equal to
    /// [`BBox::iou`] on the corresponding pair. Clears and refills `out`.
    pub fn iou_matrix_into(&self, other: &BBoxSoA, out: &mut Vec<f64>) {
        let (n, m) = (self.len(), other.len());
        out.clear();
        out.resize(n * m, 0.0);
        let (bx1, by1, bx2, by2) = (
            &other.x1[..m],
            &other.y1[..m],
            &other.x2[..m],
            &other.y2[..m],
        );
        for i in 0..n {
            let (ax1, ay1, ax2, ay2) = (self.x1[i], self.y1[i], self.x2[i], self.y2[i]);
            let area_a = (ax2 - ax1) * (ay2 - ay1);
            // Writing whole rows through a bounds-checked-once slice keeps
            // the inner loop branch-free (the union guard compiles to a
            // select), so it vectorizes; the arithmetic per pair is still
            // the exact `BBox::iou` expression.
            let row = &mut out[i * m..(i + 1) * m];
            for j in 0..m {
                let w = (ax2.min(bx2[j]) - ax1.max(bx1[j])).max(0.0);
                let h = (ay2.min(by2[j]) - ay1.max(by1[j])).max(0.0);
                let inter = w * h;
                let union = area_a + (bx2[j] - bx1[j]) * (by2[j] - by1[j]) - inter;
                row[j] = if union > 0.0 { inter / union } else { 0.0 };
            }
        }
    }

    /// For each box `i` of `self`, whether *some single* box of `covers`
    /// covers at least `threshold` of box `i`'s area — the coverage test of
    /// new-region detection, evaluated column-wise. Clears and refills
    /// `out` with one flag per box of `self`.
    ///
    /// Per pair, the coverage fraction is the exact [`BBox::coverage_by`]
    /// expression (`intersection_area / area`, zero for degenerate boxes),
    /// so the flag matches `covers.iter().any(|p| c.coverage_by(p) >=
    /// threshold)` on the scalar path exactly.
    pub fn covered_mask_into(&self, covers: &BBoxSoA, threshold: f64, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(covers.covers_box(&self.get(i), threshold));
        }
    }

    /// Index of the smallest-area box containing `p`, or `None` when no box
    /// does. Ties break to the earliest index — the exact selection rule of
    /// the scalar displacement lookup (strict `area <` improvement over an
    /// in-order scan).
    #[inline]
    pub fn smallest_containing(&self, p: Point2) -> Option<usize> {
        let n = self.len();
        let (x1, y1, x2, y2) = (&self.x1[..n], &self.y1[..n], &self.x2[..n], &self.y2[..n]);
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            if p.x >= x1[i] && p.x <= x2[i] && p.y >= y1[i] && p.y <= y2[i] {
                let area = (x2[i] - x1[i]) * (y2[i] - y1[i]);
                if best.is_none_or(|(_, a)| area < a) {
                    best = Some((i, area));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Whether some single box of `self` covers at least `threshold` of
    /// `b`'s area — one row of [`covered_mask_into`](Self::covered_mask_into)
    /// with the candidate box in AoS form, so a caller holding plain
    /// [`BBox`] candidates only has to columnize the cover set. Per pair
    /// the fraction is the exact [`BBox::coverage_by`] expression, and the
    /// scan short-circuits exactly like the scalar `any(..)`.
    #[inline]
    pub fn covers_box(&self, b: &BBox, threshold: f64) -> bool {
        let m = self.len();
        let (x1, y1, x2, y2) = (&self.x1[..m], &self.y1[..m], &self.x2[..m], &self.y2[..m]);
        let (cx1, cy1, cx2, cy2) = (b.x1(), b.y1(), b.x2(), b.y2());
        let area = (cx2 - cx1) * (cy2 - cy1);
        for j in 0..m {
            let w = (cx2.min(x2[j]) - cx1.max(x1[j])).max(0.0);
            let h = (cy2.min(y2[j]) - cy1.max(y1[j])).max(0.0);
            let inter = w * h;
            let frac = if area > 0.0 { inter / area } else { 0.0 };
            if frac >= threshold {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x: f64, y: f64, s: f64) -> BBox {
        BBox::new(x, y, x + s, y + s).unwrap()
    }

    #[test]
    fn round_trips_boxes() {
        let boxes = [bb(0.0, 0.0, 10.0), bb(3.5, -2.0, 7.25)];
        let soa = BBoxSoA::from_boxes(&boxes);
        assert_eq!(soa.len(), 2);
        assert!(!soa.is_empty());
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(soa.get(i), *b);
            assert_eq!(soa.area(i).to_bits(), b.area().to_bits());
            assert_eq!(soa.center(i), b.center());
        }
    }

    #[test]
    fn fill_reuses_capacity() {
        let mut soa = BBoxSoA::from_boxes(&[bb(0.0, 0.0, 5.0), bb(1.0, 1.0, 5.0)]);
        soa.fill_from_boxes(&[bb(9.0, 9.0, 2.0)]);
        assert_eq!(soa.len(), 1);
        assert_eq!(soa.get(0), bb(9.0, 9.0, 2.0));
        soa.clear();
        assert!(soa.is_empty());
    }

    #[test]
    fn iou_matrix_matches_scalar() {
        let a = [bb(0.0, 0.0, 10.0), bb(5.0, 5.0, 10.0)];
        let b = [
            bb(2.0, 2.0, 10.0),
            bb(100.0, 100.0, 3.0),
            bb(0.0, 0.0, 10.0),
        ];
        let sa = BBoxSoA::from_boxes(&a);
        let sb = BBoxSoA::from_boxes(&b);
        let mut out = Vec::new();
        sa.iou_matrix_into(&sb, &mut out);
        assert_eq!(out.len(), a.len() * b.len());
        for (i, ba) in a.iter().enumerate() {
            for (j, bbx) in b.iter().enumerate() {
                assert_eq!(out[i * b.len() + j].to_bits(), ba.iou(bbx).to_bits());
            }
        }
    }

    #[test]
    fn covered_mask_matches_any_coverage() {
        let clusters = [bb(100.0, 100.0, 50.0), bb(500.0, 400.0, 40.0)];
        let predicted = [bb(95.0, 95.0, 60.0)];
        let sc = BBoxSoA::from_boxes(&clusters);
        let sp = BBoxSoA::from_boxes(&predicted);
        let mut mask = Vec::new();
        sc.covered_mask_into(&sp, 0.5, &mut mask);
        assert_eq!(mask, vec![true, false]);
        // Empty cover set: nothing is covered.
        sc.covered_mask_into(&BBoxSoA::new(), 0.5, &mut mask);
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn smallest_containing_prefers_small_then_early() {
        let boxes = [
            BBox::new(0.0, 0.0, 200.0, 200.0).unwrap(),
            BBox::new(50.0, 50.0, 90.0, 90.0).unwrap(),
            BBox::new(50.0, 50.0, 90.0, 90.0).unwrap(), // same area: earlier wins
        ];
        let soa = BBoxSoA::from_boxes(&boxes);
        assert_eq!(soa.smallest_containing(Point2::new(70.0, 70.0)), Some(1));
        assert_eq!(soa.smallest_containing(Point2::new(10.0, 10.0)), Some(0));
        assert_eq!(soa.smallest_containing(Point2::new(500.0, 500.0)), None);
    }
}
