//! Geometry primitives for multi-view video analytics.
//!
//! This crate provides the 2-D vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Point2`] — a point (or displacement) in the plane;
//! * [`BBox`] — an axis-aligned bounding box with intersection-over-union and
//!   the centred-expansion operations used by tracking-based image slicing;
//! * [`FrameDims`] — pixel dimensions of a camera frame;
//! * [`SizeClass`] — the quantized partial-region sizes (64/128/256/512) that
//!   make GPU task batching possible;
//! * [`Grid`] — a cell grid over a frame, used by the distributed-stage
//!   camera masks;
//! * [`Polygon`] — a convex polygon used for camera fields of view in world
//!   coordinates;
//! * [`Projective2`] — a 3×3 projective transform (homography).
//!
//! # Examples
//!
//! ```
//! use mvs_geometry::{BBox, SizeClass};
//!
//! let car = BBox::new(100.0, 50.0, 180.0, 110.0).unwrap();
//! let predicted = BBox::new(104.0, 52.0, 186.0, 114.0).unwrap();
//! assert!(car.iou(&predicted) > 0.7);
//!
//! // Tracking-based slicing expands the search region to a quantized size so
//! // that equally-sized crops can be batched on the GPU.
//! let class = SizeClass::quantize(car.width(), car.height());
//! assert_eq!(class, SizeClass::S128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod frame;
mod grid;
mod point;
mod polygon;
mod size;
mod soa;
mod transform;

pub use bbox::{BBox, BBoxError};
pub use frame::FrameDims;
pub use grid::{CellIndex, Grid};
pub use point::Point2;
pub use polygon::{Polygon, PolygonError};
pub use size::SizeClass;
pub use soa::BBoxSoA;
pub use transform::Projective2;
