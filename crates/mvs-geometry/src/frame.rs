//! Camera frame dimensions.

use crate::BBox;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Pixel dimensions of a camera frame.
///
/// The paper uses 1280×704 for regular cameras and 1280×960 for fisheye
/// cameras; both are provided as constants.
///
/// # Examples
///
/// ```
/// use mvs_geometry::FrameDims;
///
/// let f = FrameDims::REGULAR;
/// assert_eq!(f.pixel_count(), 1280 * 704);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameDims {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
}

impl FrameDims {
    /// The 1280×704 frame used for regular cameras in the paper.
    pub const REGULAR: FrameDims = FrameDims {
        width: 1280,
        height: 704,
    };

    /// The 1280×960 frame used for fisheye cameras in the paper.
    pub const FISHEYE: FrameDims = FrameDims {
        width: 1280,
        height: 960,
    };

    /// Creates frame dimensions.
    #[inline]
    pub const fn new(width: u32, height: u32) -> Self {
        FrameDims { width, height }
    }

    /// Total pixel count.
    #[inline]
    pub const fn pixel_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// The whole frame as a bounding box anchored at the origin.
    pub fn as_bbox(&self) -> BBox {
        BBox::new(0.0, 0.0, self.width as f64, self.height as f64)
            .expect("frame dimensions are finite and non-negative")
    }

    /// Whether the box is entirely inside the frame.
    pub fn contains(&self, b: &BBox) -> bool {
        self.as_bbox().contains_box(b)
    }
}

impl Default for FrameDims {
    fn default() -> Self {
        FrameDims::REGULAR
    }
}

impl fmt::Display for FrameDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(FrameDims::REGULAR, FrameDims::new(1280, 704));
        assert_eq!(FrameDims::FISHEYE, FrameDims::new(1280, 960));
    }

    #[test]
    fn as_bbox_covers_frame() {
        let f = FrameDims::new(100, 50);
        let b = f.as_bbox();
        assert_eq!(b.area(), 5000.0);
        assert!(f.contains(&BBox::new(0.0, 0.0, 100.0, 50.0).unwrap()));
        assert!(!f.contains(&BBox::new(0.0, 0.0, 101.0, 50.0).unwrap()));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FrameDims::REGULAR.to_string(), "1280x704");
    }
}
