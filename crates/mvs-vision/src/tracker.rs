//! Optical-flow tracking-by-detection.
//!
//! The per-camera tracker of Sec. II-B: previously detected objects are
//! projected into the current frame with optical flow, partial-frame
//! detections are associated back to tracks by IoU via the Hungarian
//! algorithm, and tracks that keep missing are dropped.

use crate::{Detection, FlowField};
use mvs_geometry::{BBox, FrameDims, SizeClass};
use mvs_ml::hungarian_max;
use serde::{Deserialize, Serialize};

/// Identifier of a track within one camera's tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TrackId(pub u64);

/// One tracked object on one camera.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// Tracker-local identity.
    pub id: TrackId,
    /// Current (flow-predicted or detection-corrected) bounding box.
    pub bbox: BBox,
    /// Quantized crop size, fixed for the scheduling horizon. If the object
    /// grows past it the crop is downsampled rather than re-quantized
    /// (Sec. II-B).
    pub size: SizeClass,
    /// Frames survived since creation.
    pub age: u32,
    /// Consecutive frames without a matched detection.
    pub misses: u32,
    /// Ground-truth identity of the last matched detection. **Evaluation
    /// only** — never used by tracking logic.
    pub last_truth: Option<u64>,
}

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Minimum IoU for a detection↔track match.
    pub iou_threshold: f64,
    /// Consecutive misses after which a track is dropped.
    pub max_misses: u32,
    /// Fractional margin added around a detection before quantizing its
    /// search-region size (gives the object room to move within a horizon).
    pub margin_frac: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            iou_threshold: 0.1,
            max_misses: 3,
            margin_frac: 0.25,
        }
    }
}

/// Result of one association round.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationOutcome {
    /// Indices (into the detection slice) that matched an existing track.
    pub matched: Vec<(TrackId, usize)>,
    /// Indices of detections that matched no track.
    pub unmatched_detections: Vec<usize>,
}

/// Per-camera flow tracker.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{BBox, FrameDims};
/// use mvs_vision::{FlowTracker, TrackerConfig};
///
/// let mut tracker = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
/// let id = tracker.seed(BBox::new(100.0, 100.0, 160.0, 150.0)?, Some(42));
/// assert_eq!(tracker.tracks().len(), 1);
/// assert_eq!(tracker.get(id).unwrap().last_truth, Some(42));
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowTracker {
    config: TrackerConfig,
    frame: FrameDims,
    tracks: Vec<Track>,
    next_id: u64,
}

impl FlowTracker {
    /// Creates an empty tracker.
    pub fn new(config: TrackerConfig, frame: FrameDims) -> Self {
        FlowTracker {
            config,
            frame,
            tracks: Vec::new(),
            next_id: 0,
        }
    }

    /// Currently live tracks.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Looks up one track.
    pub fn get(&self, id: TrackId) -> Option<&Track> {
        self.tracks.iter().find(|t| t.id == id)
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Drops every track (start of a new horizon re-seeds from the central
    /// assignment).
    pub fn clear(&mut self) {
        self.tracks.clear();
    }

    /// Seeds a track from a key-frame detection (or a takeover decision).
    /// The crop size is quantized once here and then stays fixed.
    pub fn seed(&mut self, bbox: BBox, truth: Option<u64>) -> TrackId {
        let id = TrackId(self.next_id);
        self.next_id += 1;
        let m = 1.0 + self.config.margin_frac;
        let size = SizeClass::quantize(bbox.width() * m, bbox.height() * m);
        self.tracks.push(Track {
            id,
            bbox,
            size,
            age: 0,
            misses: 0,
            last_truth: truth,
        });
        id
    }

    /// Removes a track (e.g. the distributed stage hands it to another
    /// camera). Returns `true` if it existed.
    pub fn remove(&mut self, id: TrackId) -> bool {
        let before = self.tracks.len();
        self.tracks.retain(|t| t.id != id);
        self.tracks.len() != before
    }

    /// Advances every track by the optical-flow displacement sampled at its
    /// box centre, clamping to the frame. Tracks that drift entirely out of
    /// frame are dropped.
    pub fn predict(&mut self, flow: &FlowField) {
        let frame = self.frame;
        self.tracks.retain_mut(|t| {
            let v = flow.displacement_at(t.bbox.center());
            let moved = t.bbox.translated(v.displacement);
            match moved.clamped_to(frame) {
                // Keep only tracks that remain meaningfully in frame.
                Some(clamped) if clamped.area() > 0.25 * t.bbox.area() => {
                    t.bbox = moved;
                    t.age += 1;
                    true
                }
                _ => false,
            }
        });
    }

    /// Associates detections with tracks (maximum-IoU Hungarian matching),
    /// corrects matched tracks, and increments misses on unmatched ones.
    ///
    /// Returns which detections matched and which are left over (candidate
    /// new objects).
    pub fn associate(&mut self, detections: &[Detection]) -> AssociationOutcome {
        if self.tracks.is_empty() || detections.is_empty() {
            for t in &mut self.tracks {
                t.misses += 1;
            }
            return AssociationOutcome {
                matched: Vec::new(),
                unmatched_detections: (0..detections.len()).collect(),
            };
        }
        let score: Vec<Vec<f64>> = self
            .tracks
            .iter()
            .map(|t| detections.iter().map(|d| t.bbox.iou(&d.bbox)).collect())
            .collect();
        let assignment = hungarian_max(&score).expect("finite IoU matrix");
        let mut matched = Vec::new();
        let mut det_used = vec![false; detections.len()];
        for (ti, di) in assignment.iter() {
            if score[ti][di] >= self.config.iou_threshold {
                let t = &mut self.tracks[ti];
                t.bbox = detections[di].bbox;
                t.misses = 0;
                t.last_truth = detections[di].truth_id;
                matched.push((t.id, di));
                det_used[di] = true;
            }
        }
        let matched_tracks: Vec<TrackId> = matched.iter().map(|(id, _)| *id).collect();
        for t in &mut self.tracks {
            if !matched_tracks.contains(&t.id) {
                t.misses += 1;
            }
        }
        AssociationOutcome {
            matched,
            unmatched_detections: det_used
                .iter()
                .enumerate()
                .filter(|(_, used)| !**used)
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// Drops tracks whose consecutive misses exceed the configured maximum.
    /// Returns the dropped ids.
    pub fn prune(&mut self) -> Vec<TrackId> {
        let max = self.config.max_misses;
        let dropped: Vec<TrackId> = self
            .tracks
            .iter()
            .filter(|t| t.misses > max)
            .map(|t| t.id)
            .collect();
        self.tracks.retain(|t| t.misses <= max);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroundTruthObject;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bb(x: f64, y: f64, s: f64) -> BBox {
        BBox::new(x, y, x + s, y + s).unwrap()
    }

    fn det(bbox: BBox, truth: Option<u64>) -> Detection {
        Detection {
            bbox,
            confidence: 0.9,
            truth_id: truth,
        }
    }

    #[test]
    fn seed_quantizes_with_margin() {
        let mut t = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
        // 60 px side * 1.25 margin = 75 → S128.
        let id = t.seed(bb(0.0, 0.0, 60.0), None);
        assert_eq!(t.get(id).unwrap().size, SizeClass::S128);
        // 40 px side * 1.25 = 50 → S64.
        let id2 = t.seed(bb(0.0, 0.0, 40.0), None);
        assert_eq!(t.get(id2).unwrap().size, SizeClass::S64);
    }

    #[test]
    fn predict_moves_tracks_with_flow() {
        let mut tracker = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
        tracker.seed(bb(100.0, 100.0, 50.0), Some(1));
        let prev = [GroundTruthObject {
            id: 1,
            bbox: bb(100.0, 100.0, 50.0),
        }];
        let curr = [GroundTruthObject {
            id: 1,
            bbox: bb(112.0, 104.0, 50.0),
        }];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        tracker.predict(&flow);
        let t = &tracker.tracks()[0];
        assert!((t.bbox.x1() - 112.0).abs() < 1e-9);
        assert!((t.bbox.y1() - 104.0).abs() < 1e-9);
        assert_eq!(t.age, 1);
    }

    #[test]
    fn tracks_leaving_frame_are_dropped_on_predict() {
        let mut tracker = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
        tracker.seed(bb(10.0, 10.0, 40.0), Some(1));
        let prev = [GroundTruthObject {
            id: 1,
            bbox: bb(10.0, 10.0, 40.0),
        }];
        // Object jumps far out of frame.
        let curr = [GroundTruthObject {
            id: 1,
            bbox: BBox::new(-500.0, 10.0, -460.0, 50.0).unwrap(),
        }];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        tracker.predict(&flow);
        assert!(tracker.tracks().is_empty());
    }

    #[test]
    fn association_corrects_matched_tracks() {
        let mut tracker = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
        let id = tracker.seed(bb(100.0, 100.0, 50.0), None);
        let d = det(bb(105.0, 102.0, 50.0), Some(9));
        let out = tracker.associate(&[d]);
        assert_eq!(out.matched, vec![(id, 0)]);
        assert!(out.unmatched_detections.is_empty());
        let t = tracker.get(id).unwrap();
        assert_eq!(t.bbox, d.bbox);
        assert_eq!(t.last_truth, Some(9));
        assert_eq!(t.misses, 0);
    }

    #[test]
    fn association_leaves_far_detections_unmatched() {
        let mut tracker = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
        tracker.seed(bb(100.0, 100.0, 50.0), None);
        let far = det(bb(900.0, 500.0, 50.0), Some(2));
        let out = tracker.associate(&[far]);
        assert!(out.matched.is_empty());
        assert_eq!(out.unmatched_detections, vec![0]);
        assert_eq!(tracker.tracks()[0].misses, 1);
    }

    #[test]
    fn hungarian_resolves_crossing_tracks() {
        let mut tracker = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
        let a = tracker.seed(bb(100.0, 100.0, 50.0), None);
        let b = tracker.seed(bb(200.0, 100.0, 50.0), None);
        // Two detections near each track, slightly shuffled in order.
        let d_b = det(bb(195.0, 100.0, 50.0), Some(2));
        let d_a = det(bb(108.0, 100.0, 50.0), Some(1));
        let out = tracker.associate(&[d_b, d_a]);
        let map: std::collections::HashMap<TrackId, usize> = out.matched.into_iter().collect();
        assert_eq!(map[&a], 1);
        assert_eq!(map[&b], 0);
    }

    #[test]
    fn prune_drops_after_max_misses() {
        let cfg = TrackerConfig {
            max_misses: 1,
            ..Default::default()
        };
        let mut tracker = FlowTracker::new(cfg, FrameDims::REGULAR);
        let id = tracker.seed(bb(100.0, 100.0, 50.0), None);
        tracker.associate(&[]); // miss 1
        assert!(tracker.prune().is_empty());
        tracker.associate(&[]); // miss 2 > max 1
        assert_eq!(tracker.prune(), vec![id]);
        assert!(tracker.tracks().is_empty());
    }

    #[test]
    fn remove_and_clear() {
        let mut tracker = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
        let id = tracker.seed(bb(0.0, 0.0, 30.0), None);
        assert!(tracker.remove(id));
        assert!(!tracker.remove(id));
        tracker.seed(bb(0.0, 0.0, 30.0), None);
        tracker.clear();
        assert!(tracker.tracks().is_empty());
    }
}
