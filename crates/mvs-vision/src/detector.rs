//! Simulated DNN object detector.
//!
//! Stand-in for YOLOv5 (see DESIGN.md, substitution 2). The detector
//! receives the ground-truth boxes that are visible in the inspected area
//! and degrades them through a quality model: a miss probability that grows
//! for small objects and for objects poorly covered by the inspected crop,
//! Gaussian localization jitter, and occasional false positives. Every
//! random draw comes from a caller-provided RNG, so whole experiments are
//! reproducible from one seed.

use mvs_geometry::{BBox, FrameDims, Point2, SizeClass};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A ground-truth object visible in a camera frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthObject {
    /// Stable world identity of the object (assigned by the simulator).
    pub id: u64,
    /// Its true bounding box in this camera's pixel coordinates.
    pub bbox: BBox,
}

/// One detection emitted by the (simulated) DNN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Detected bounding box (jittered relative to ground truth).
    pub bbox: BBox,
    /// Detection confidence in `[0, 1]`.
    pub confidence: f64,
    /// Ground-truth identity behind this detection, or `None` for a false
    /// positive. **Evaluation only** — the pipeline must never branch on
    /// this field; association and tracking work purely from `bbox`.
    pub truth_id: Option<u64>,
}

/// Quality parameters of the simulated detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionModel {
    /// Miss probability for a comfortably large, fully covered object.
    pub base_miss_rate: f64,
    /// Extra miss probability per unit of "smallness": an object whose long
    /// side is `s` pixels gains `small_miss_scale * max(0, 1 - s/64)`.
    pub small_miss_scale: f64,
    /// Standard deviation of corner jitter, as a fraction of the object's
    /// long side.
    pub jitter_frac: f64,
    /// Probability of one false positive per full-frame inspection.
    pub false_positive_rate: f64,
    /// Minimum fraction of the object's area that must lie inside the
    /// inspected crop for the object to be detectable at all.
    pub min_coverage: f64,
}

impl Default for DetectionModel {
    fn default() -> Self {
        DetectionModel {
            base_miss_rate: 0.02,
            small_miss_scale: 0.15,
            jitter_frac: 0.03,
            false_positive_rate: 0.02,
            min_coverage: 0.35,
        }
    }
}

impl DetectionModel {
    /// A perfect detector (no misses, no jitter, no false positives); handy
    /// in tests that need deterministic geometry.
    pub fn perfect() -> Self {
        DetectionModel {
            base_miss_rate: 0.0,
            small_miss_scale: 0.0,
            jitter_frac: 0.0,
            false_positive_rate: 0.0,
            min_coverage: 0.35,
        }
    }

    /// Miss probability for an object with the given long side (pixels).
    pub fn miss_probability(&self, long_side: f64) -> f64 {
        let smallness = (1.0 - long_side / 64.0).max(0.0);
        (self.base_miss_rate + self.small_miss_scale * smallness).clamp(0.0, 1.0)
    }
}

/// The simulated DNN detector.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{BBox, FrameDims};
/// use mvs_vision::{DetectionModel, GroundTruthObject, SimulatedDetector};
/// use rand::SeedableRng;
///
/// let det = SimulatedDetector::new(DetectionModel::perfect(), FrameDims::REGULAR);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let objects = [GroundTruthObject { id: 7, bbox: BBox::new(100.0, 100.0, 180.0, 160.0)? }];
/// let dets = det.detect_full_frame(&objects, &mut rng);
/// assert_eq!(dets.len(), 1);
/// assert_eq!(dets[0].truth_id, Some(7));
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedDetector {
    model: DetectionModel,
    frame: FrameDims,
}

impl SimulatedDetector {
    /// Creates a detector with the given quality model and frame size.
    pub fn new(model: DetectionModel, frame: FrameDims) -> Self {
        SimulatedDetector { model, frame }
    }

    /// The quality model in use.
    pub fn model(&self) -> &DetectionModel {
        &self.model
    }

    /// Full-frame inspection: every visible object is a detection candidate.
    pub fn detect_full_frame<R: Rng + ?Sized>(
        &self,
        objects: &[GroundTruthObject],
        rng: &mut R,
    ) -> Vec<Detection> {
        let frame_box = self.frame.as_bbox();
        let mut out = Vec::with_capacity(objects.len());
        for obj in objects {
            if let Some(d) = self.try_detect(obj, &frame_box, rng) {
                out.push(d);
            }
        }
        if rng.gen_bool(self.model.false_positive_rate.clamp(0.0, 1.0)) {
            out.push(self.false_positive(rng));
        }
        out
    }

    /// Traced variant of [`detect_full_frame`](Self::detect_full_frame):
    /// records a [`mvs_trace::Stage::Detect`] span. The detector does not
    /// know the device latency tables, so the caller passes the modeled
    /// full-frame inference duration `modeled_ms`.
    pub fn detect_full_frame_traced<R: Rng + ?Sized>(
        &self,
        objects: &[GroundTruthObject],
        rng: &mut R,
        modeled_ms: f64,
        trace: Option<&mut mvs_trace::TraceBuf>,
    ) -> Vec<Detection> {
        let dets = self.detect_full_frame(objects, rng);
        mvs_trace::span_into(trace, mvs_trace::Stage::Detect, modeled_ms, dets.len());
        dets
    }

    /// Partial-frame inspection of one crop: objects are detectable only if
    /// the crop covers enough of them. `_size` documents the crop's
    /// quantized size (latency is accounted elsewhere).
    pub fn detect_region<R: Rng + ?Sized>(
        &self,
        region: &BBox,
        _size: SizeClass,
        objects: &[GroundTruthObject],
        rng: &mut R,
    ) -> Vec<Detection> {
        let mut out = Vec::new();
        for obj in objects {
            if obj.bbox.coverage_by(region) < self.model.min_coverage {
                continue;
            }
            if let Some(d) = self.try_detect(obj, region, rng) {
                out.push(d);
            }
        }
        out
    }

    fn try_detect<R: Rng + ?Sized>(
        &self,
        obj: &GroundTruthObject,
        area: &BBox,
        rng: &mut R,
    ) -> Option<Detection> {
        if obj.bbox.coverage_by(area) < self.model.min_coverage {
            return None;
        }
        let long = obj.bbox.long_side();
        if rng.gen_bool(self.model.miss_probability(long).clamp(0.0, 1.0)) {
            return None;
        }
        let sigma = self.model.jitter_frac * long;
        let jitter = |rng: &mut R| {
            if sigma > 0.0 {
                // Box-Muller normal draw.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            } else {
                0.0
            }
        };
        let a = obj.bbox.to_array();
        let jittered = [
            a[0] + jitter(rng),
            a[1] + jitter(rng),
            a[2] + jitter(rng),
            a[3] + jitter(rng),
        ];
        let bbox = BBox::from_array_lenient(jittered).ok()?;
        let bbox = bbox.clamped_to(self.frame)?;
        let confidence = (1.0 - self.model.miss_probability(long)) * rng.gen_range(0.85..1.0);
        Some(Detection {
            bbox,
            confidence,
            truth_id: Some(obj.id),
        })
    }

    fn false_positive<R: Rng + ?Sized>(&self, rng: &mut R) -> Detection {
        let w = rng.gen_range(20.0..80.0);
        let h = rng.gen_range(20.0..80.0);
        let cx = rng.gen_range(w..(self.frame.width as f64 - w));
        let cy = rng.gen_range(h..(self.frame.height as f64 - h));
        Detection {
            bbox: BBox::from_center(Point2::new(cx, cy), w, h)
                .clamped_to(self.frame)
                .expect("false positive is constructed inside the frame"),
            confidence: rng.gen_range(0.3..0.6),
            truth_id: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn obj(id: u64, x: f64, y: f64, w: f64, h: f64) -> GroundTruthObject {
        GroundTruthObject {
            id,
            bbox: BBox::new(x, y, x + w, y + h).unwrap(),
        }
    }

    #[test]
    fn perfect_detector_finds_everything_exactly() {
        let det = SimulatedDetector::new(DetectionModel::perfect(), FrameDims::REGULAR);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let objects = [
            obj(1, 100.0, 100.0, 80.0, 60.0),
            obj(2, 500.0, 300.0, 40.0, 40.0),
        ];
        let dets = det.detect_full_frame(&objects, &mut rng);
        assert_eq!(dets.len(), 2);
        for (d, o) in dets.iter().zip(&objects) {
            assert_eq!(d.truth_id, Some(o.id));
            assert!(d.bbox.iou(&o.bbox) > 0.999);
        }
    }

    #[test]
    fn region_detection_requires_coverage() {
        let det = SimulatedDetector::new(DetectionModel::perfect(), FrameDims::REGULAR);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let objects = [obj(1, 100.0, 100.0, 60.0, 60.0)];
        // Crop right on top of the object: found.
        let good = BBox::from_center(Point2::new(130.0, 130.0), 128.0, 128.0);
        assert_eq!(
            det.detect_region(&good, SizeClass::S128, &objects, &mut rng)
                .len(),
            1
        );
        // Crop far away: not found.
        let bad = BBox::from_center(Point2::new(800.0, 500.0), 128.0, 128.0);
        assert!(det
            .detect_region(&bad, SizeClass::S128, &objects, &mut rng)
            .is_empty());
        // Crop covering only a sliver: below min_coverage.
        let sliver = BBox::new(90.0, 90.0, 110.0, 170.0).unwrap();
        assert!(det
            .detect_region(&sliver, SizeClass::S128, &objects, &mut rng)
            .is_empty());
    }

    #[test]
    fn small_objects_miss_more_often() {
        let model = DetectionModel::default();
        assert!(model.miss_probability(20.0) > model.miss_probability(60.0));
        assert_eq!(model.miss_probability(64.0), model.base_miss_rate);
        assert_eq!(model.miss_probability(500.0), model.base_miss_rate);
    }

    #[test]
    fn miss_rate_is_statistically_respected() {
        let model = DetectionModel {
            base_miss_rate: 0.3,
            small_miss_scale: 0.0,
            jitter_frac: 0.0,
            false_positive_rate: 0.0,
            min_coverage: 0.35,
        };
        let det = SimulatedDetector::new(model, FrameDims::REGULAR);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let objects = [obj(1, 100.0, 100.0, 100.0, 100.0)];
        let mut found = 0;
        let n = 2000;
        for _ in 0..n {
            found += det.detect_full_frame(&objects, &mut rng).len();
        }
        let rate = found as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.05, "observed detection rate {rate}");
    }

    #[test]
    fn jitter_moves_but_preserves_overlap() {
        let model = DetectionModel {
            jitter_frac: 0.05,
            base_miss_rate: 0.0,
            small_miss_scale: 0.0,
            false_positive_rate: 0.0,
            min_coverage: 0.35,
        };
        let det = SimulatedDetector::new(model, FrameDims::REGULAR);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let o = obj(1, 300.0, 300.0, 100.0, 80.0);
        let mut any_moved = false;
        for _ in 0..20 {
            let d = &det.detect_full_frame(&[o], &mut rng)[0];
            assert!(d.bbox.iou(&o.bbox) > 0.5);
            if d.bbox != o.bbox {
                any_moved = true;
            }
        }
        assert!(any_moved);
    }

    #[test]
    fn false_positives_have_no_truth_id() {
        let model = DetectionModel {
            false_positive_rate: 1.0,
            ..DetectionModel::perfect()
        };
        let det = SimulatedDetector::new(model, FrameDims::REGULAR);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dets = det.detect_full_frame(&[], &mut rng);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].truth_id, None);
        assert!(FrameDims::REGULAR.contains(&dets[0].bbox));
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let det = SimulatedDetector::new(DetectionModel::default(), FrameDims::REGULAR);
        let objects = [
            obj(1, 50.0, 60.0, 90.0, 70.0),
            obj(2, 700.0, 400.0, 30.0, 30.0),
        ];
        let a = det.detect_full_frame(&objects, &mut ChaCha8Rng::seed_from_u64(9));
        let b = det.detect_full_frame(&objects, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
