//! New-region detection.
//!
//! Clusters of moving pixels that belong to no predicted track box indicate
//! newly appeared objects (Sec. II-B). Feeding these regions to the
//! detector catches new objects at first appearance instead of waiting for
//! the next key frame.

use mvs_geometry::{BBox, BBoxSoA};

/// Finds moving clusters that are not explained by any predicted track box.
///
/// A cluster is *explained* when at least `coverage_threshold` of its area
/// is covered by some single predicted box. Unexplained clusters that
/// overlap each other are merged (hull) so one new object produces one
/// probe region.
///
/// # Examples
///
/// ```
/// use mvs_geometry::BBox;
/// use mvs_vision::find_new_regions;
///
/// let clusters = [
///     BBox::new(100.0, 100.0, 150.0, 150.0)?, // tracked object
///     BBox::new(600.0, 300.0, 660.0, 360.0)?, // brand new object
/// ];
/// let predicted = [BBox::new(95.0, 95.0, 155.0, 155.0)?];
/// let fresh = find_new_regions(&clusters, &predicted, 0.5);
/// assert_eq!(fresh.len(), 1);
/// assert_eq!(fresh[0], clusters[1]);
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
pub fn find_new_regions(
    clusters: &[BBox],
    predicted: &[BBox],
    coverage_threshold: f64,
) -> Vec<BBox> {
    let mut fresh = Vec::new();
    find_new_regions_into(clusters, predicted, coverage_threshold, &mut fresh);
    fresh
}

/// Buffer-reusing variant of [`find_new_regions`]: clears `out` and fills
/// it with the same merged regions, so the per-frame new-object probe
/// allocates nothing in steady state.
pub fn find_new_regions_into(
    clusters: &[BBox],
    predicted: &[BBox],
    coverage_threshold: f64,
    out: &mut Vec<BBox>,
) {
    let fresh = out;
    fresh.clear();
    fresh.extend(clusters.iter().filter(|c| {
        !predicted
            .iter()
            .any(|p| c.coverage_by(p) >= coverage_threshold)
    }));
    // Merge transitively-overlapping regions into hulls.
    merge_overlapping(fresh);
}

/// Data-oriented new-region finder with reusable column scratch.
///
/// [`find_new_regions_into`] tests every cluster against every predicted
/// box through the AoS layout; per frame that is the densest pairwise loop
/// in the distributed stage. The finder copies the predicted set into
/// [`BBoxSoA`] columns once and evaluates each cluster's coverage test
/// against the columns ([`BBoxSoA::covers_box`]), whose per-pair
/// arithmetic — and short-circuit order — is the exact scalar expression,
/// so the surviving cluster set, and therefore the merged hulls, are
/// identical to the scalar path (see the differential proptests).
///
/// # Examples
///
/// ```
/// use mvs_geometry::BBox;
/// use mvs_vision::{find_new_regions, NewRegionFinder};
///
/// let clusters = [
///     BBox::new(100.0, 100.0, 150.0, 150.0)?,
///     BBox::new(600.0, 300.0, 660.0, 360.0)?,
/// ];
/// let predicted = [BBox::new(95.0, 95.0, 155.0, 155.0)?];
/// let mut finder = NewRegionFinder::new();
/// let mut fresh = Vec::new();
/// finder.find_into(&clusters, &predicted, 0.5, &mut fresh);
/// assert_eq!(fresh, find_new_regions(&clusters, &predicted, 0.5));
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct NewRegionFinder {
    predicted: BBoxSoA,
}

impl NewRegionFinder {
    /// A finder with empty scratch columns.
    #[must_use]
    pub fn new() -> Self {
        NewRegionFinder::default()
    }

    /// Finds unexplained moving clusters exactly like
    /// [`find_new_regions_into`], but through the column-major coverage
    /// kernel. Clears `out` and fills it with the merged regions;
    /// allocation-free once the scratch columns are warm.
    pub fn find_into(
        &mut self,
        clusters: &[BBox],
        predicted: &[BBox],
        coverage_threshold: f64,
        out: &mut Vec<BBox>,
    ) {
        self.predicted.fill_from_boxes(predicted);
        let predicted_cols = &self.predicted;
        let fresh = out;
        fresh.clear();
        fresh.extend(
            clusters
                .iter()
                .filter(|c| !predicted_cols.covers_box(c, coverage_threshold)),
        );
        merge_overlapping(fresh);
    }
}

/// Merges transitively-overlapping regions into hulls, in place — the
/// shared tail of the scalar and SoA finders.
fn merge_overlapping(fresh: &mut Vec<BBox>) {
    let mut merged = true;
    while merged {
        merged = false;
        'outer: for i in 0..fresh.len() {
            for j in i + 1..fresh.len() {
                if fresh[i].intersection_area(&fresh[j]) > 0.0 {
                    let hull = fresh[i].union_hull(&fresh[j]);
                    fresh.swap_remove(j);
                    fresh[i] = hull;
                    merged = true;
                    break 'outer;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x: f64, y: f64, s: f64) -> BBox {
        BBox::new(x, y, x + s, y + s).unwrap()
    }

    #[test]
    fn finder_matches_scalar_on_mixed_scene() {
        let clusters = [
            bb(100.0, 100.0, 50.0),
            bb(500.0, 400.0, 40.0),
            bb(530.0, 420.0, 40.0),
            bb(900.0, 0.0, 20.0),
        ];
        let predicted = [bb(95.0, 95.0, 60.0), bb(0.0, 0.0, 10.0)];
        let scalar = find_new_regions(&clusters, &predicted, 0.5);
        let mut finder = NewRegionFinder::new();
        let mut fresh = Vec::new();
        finder.find_into(&clusters, &predicted, 0.5, &mut fresh);
        assert_eq!(fresh, scalar);
        // Scratch reuse: a second, different query stays consistent.
        finder.find_into(&clusters[..1], &predicted, 0.5, &mut fresh);
        assert_eq!(fresh, find_new_regions(&clusters[..1], &predicted, 0.5));
    }

    #[test]
    fn covered_clusters_are_dropped() {
        let clusters = [bb(100.0, 100.0, 50.0)];
        let predicted = [bb(95.0, 95.0, 60.0)];
        assert!(find_new_regions(&clusters, &predicted, 0.5).is_empty());
    }

    #[test]
    fn uncovered_clusters_survive() {
        let clusters = [bb(100.0, 100.0, 50.0), bb(500.0, 400.0, 40.0)];
        let predicted = [bb(95.0, 95.0, 60.0)];
        let fresh = find_new_regions(&clusters, &predicted, 0.5);
        assert_eq!(fresh, vec![bb(500.0, 400.0, 40.0)]);
    }

    #[test]
    fn partial_coverage_below_threshold_counts_as_new() {
        let clusters = [bb(100.0, 100.0, 100.0)];
        // Covers only ~25% of the cluster.
        let predicted = [bb(100.0, 100.0, 50.0)];
        let fresh = find_new_regions(&clusters, &predicted, 0.5);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn overlapping_new_clusters_merge() {
        let clusters = [bb(100.0, 100.0, 60.0), bb(140.0, 120.0, 60.0)];
        let fresh = find_new_regions(&clusters, &[], 0.5);
        assert_eq!(fresh.len(), 1);
        assert!(fresh[0].contains_box(&clusters[0]));
        assert!(fresh[0].contains_box(&clusters[1]));
    }

    #[test]
    fn chain_of_overlaps_merges_transitively() {
        let clusters = [bb(0.0, 0.0, 50.0), bb(40.0, 0.0, 50.0), bb(80.0, 0.0, 50.0)];
        let fresh = find_new_regions(&clusters, &[], 0.5);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0], BBox::new(0.0, 0.0, 130.0, 50.0).unwrap());
    }

    #[test]
    fn disjoint_new_clusters_stay_separate() {
        let clusters = [bb(0.0, 0.0, 30.0), bb(500.0, 500.0, 30.0)];
        let fresh = find_new_regions(&clusters, &[], 0.5);
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(find_new_regions(&[], &[], 0.5).is_empty());
        let clusters = [bb(0.0, 0.0, 30.0)];
        assert_eq!(find_new_regions(&clusters, &[], 0.5), clusters.to_vec());
    }
}
