//! GPU task-batching arithmetic.
//!
//! Only crops with the same spatial size can share a GPU batch. Given a
//! multiset of size classes, the optimal batch sequence is obtained by
//! greedily filling batches per size class (the paper notes this conversion
//! from an assignment to batch sequences is trivial and uniquely determines
//! the camera latency of Definition 1).

use crate::LatencyProfile;
use mvs_geometry::SizeClass;
use mvs_trace::{Stage, TraceBuf};
use serde::{Deserialize, Serialize};

/// Per-size-class crop counts for one camera and frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeCounts {
    counts: [usize; SizeClass::COUNT],
}

impl SizeCounts {
    /// No crops.
    pub fn new() -> Self {
        SizeCounts::default()
    }

    /// Builds counts from an iterator of size classes.
    pub fn from_sizes<I: IntoIterator<Item = SizeClass>>(sizes: I) -> Self {
        let mut c = SizeCounts::default();
        for s in sizes {
            c.add(s);
        }
        c
    }

    /// Adds one crop of the given size.
    pub fn add(&mut self, size: SizeClass) {
        self.counts[size.index()] += 1;
    }

    /// Resets every per-size count to zero (buffer-reuse counterpart of
    /// [`SizeCounts::new`]).
    pub fn clear(&mut self) {
        self.counts = [0; SizeClass::COUNT];
    }

    /// Removes one crop of the given size; returns `false` when none left.
    pub fn remove(&mut self, size: SizeClass) -> bool {
        let c = &mut self.counts[size.index()];
        if *c == 0 {
            false
        } else {
            *c -= 1;
            true
        }
    }

    /// Number of crops of `size`.
    pub fn count(&self, size: SizeClass) -> usize {
        self.counts[size.index()]
    }

    /// Total crops across all sizes.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// True when no crops are present.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Adds one crop of `size` and returns the latency increase (ms) this
    /// causes on `profile` — non-zero exactly when the crop opens a new
    /// batch. O(1), so search loops can maintain a running
    /// [`latency_ms`](Self::latency_ms) instead of re-summing every size
    /// class per candidate.
    pub fn add_with_delta(&mut self, size: SizeClass, profile: &LatencyProfile) -> f64 {
        let limit = profile.batch_limit(size);
        let c = &mut self.counts[size.index()];
        let opens_batch = c.is_multiple_of(limit);
        *c += 1;
        if opens_batch {
            profile.batch_latency_ms(size)
        } else {
            0.0
        }
    }

    /// Removes one crop of `size` and returns the latency decrease (ms) —
    /// non-zero exactly when the removal closes a batch. Returns `0.0`
    /// without mutating when no crop of `size` is present. The O(1)
    /// counterpart of [`add_with_delta`](Self::add_with_delta).
    pub fn remove_with_delta(&mut self, size: SizeClass, profile: &LatencyProfile) -> f64 {
        let limit = profile.batch_limit(size);
        let c = &mut self.counts[size.index()];
        if *c == 0 {
            return 0.0;
        }
        // `ceil(c/limit)` drops exactly when c ≡ 1 (mod limit); the
        // `1 % limit` form also covers limit == 1, where every crop is its
        // own batch.
        let closes_batch = *c % limit == 1 % limit;
        *c -= 1;
        if closes_batch {
            profile.batch_latency_ms(size)
        } else {
            0.0
        }
    }

    /// Per-frame DNN latency (ms) under greedy same-size batching on the
    /// given device profile — the camera latency of Definition 1 minus any
    /// full-frame term.
    pub fn latency_ms(&self, profile: &LatencyProfile) -> f64 {
        SizeClass::ALL
            .iter()
            .map(|&s| {
                batches_needed(self.count(s), profile.batch_limit(s)) as f64
                    * profile.batch_latency_ms(s)
            })
            .sum()
    }

    /// Traced variant of [`latency_ms`](Self::latency_ms): records a
    /// [`Stage::Batch`] span for batch assembly (whose modeled cost the
    /// caller supplies, since the overhead model lives above this crate)
    /// followed by a [`Stage::Detect`] span covering the batched inference.
    pub fn latency_ms_traced(
        &self,
        profile: &LatencyProfile,
        assembly_ms: f64,
        trace: Option<&mut TraceBuf>,
    ) -> f64 {
        let latency = self.latency_ms(profile);
        if let Some(buf) = trace {
            let batches: usize = self.batches(profile).iter().sum();
            buf.span(Stage::Batch, assembly_ms, batches);
            buf.span(Stage::Detect, latency, self.total());
        }
        latency
    }

    /// Number of batches per size class on the given profile.
    pub fn batches(&self, profile: &LatencyProfile) -> [usize; SizeClass::COUNT] {
        let mut out = [0; SizeClass::COUNT];
        for (i, &s) in SizeClass::ALL.iter().enumerate() {
            out[i] = batches_needed(self.count(s), profile.batch_limit(s));
        }
        out
    }

    /// Remaining capacity in the last (incomplete) batch of `size`, or zero
    /// when all batches are exactly full (or there are none).
    ///
    /// This is the paper's *batch capacity* `BC = B − b` of Definition 4,
    /// evaluated for the camera's current open batch.
    pub fn open_batch_capacity(&self, size: SizeClass, profile: &LatencyProfile) -> usize {
        let limit = profile.batch_limit(size);
        let rem = self.count(size) % limit;
        if self.count(size) == 0 || rem == 0 {
            0
        } else {
            limit - rem
        }
    }
}

/// Number of batches needed for `count` crops with the given per-batch
/// limit: `ceil(count / limit)`.
///
/// # Panics
///
/// Panics if `limit` is zero.
pub fn batches_needed(count: usize, limit: usize) -> usize {
    assert!(limit > 0, "batch limit must be positive");
    count.div_ceil(limit)
}

/// Per-size crop counts for *every* camera at once, stored as one flat
/// row-major matrix (`rows × SizeClass::COUNT`).
///
/// The scalar path materializes a [`SizeCounts`] per camera and walks them
/// in separate per-camera loops; this batch keeps all counts contiguous so
/// cross-camera accumulation (one pass over the assignment) and the
/// latency model (one pass over the matrix) iterate flat slices. Each
/// row's latency is the exact [`SizeCounts::latency_ms`] expression —
/// bitwise identical, which the differential proptests enforce.
///
/// # Examples
///
/// ```
/// use mvs_geometry::SizeClass;
/// use mvs_vision::{DeviceKind, LatencyProfile, SizeCounts, SizeCountsBatch};
///
/// let p = LatencyProfile::for_device(DeviceKind::Xavier);
/// let mut batch = SizeCountsBatch::new();
/// batch.reset(2);
/// batch.add(0, SizeClass::S128);
/// batch.add(1, SizeClass::S512);
/// let scalar = SizeCounts::from_sizes([SizeClass::S128]);
/// assert_eq!(
///     batch.latency_row_ms(0, &p).to_bits(),
///     scalar.latency_ms(&p).to_bits()
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SizeCountsBatch {
    counts: Vec<usize>,
    rows: usize,
}

impl SizeCountsBatch {
    /// An empty batch with zero rows.
    #[must_use]
    pub fn new() -> Self {
        SizeCountsBatch::default()
    }

    /// Number of rows (cameras) in the batch.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Zeroes the matrix and resizes it to `rows` cameras, keeping the
    /// allocation (the per-solve buffer-reuse path).
    pub fn reset(&mut self, rows: usize) {
        self.counts.clear();
        self.counts.resize(rows * SizeClass::COUNT, 0);
        self.rows = rows;
    }

    /// Adds one crop of `size` to camera `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn add(&mut self, row: usize, size: SizeClass) {
        assert!(row < self.rows, "row {row} out of range");
        self.counts[row * SizeClass::COUNT + size.index()] += 1;
    }

    /// Number of crops of `size` on camera `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn count(&self, row: usize, size: SizeClass) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        self.counts[row * SizeClass::COUNT + size.index()]
    }

    /// Copies camera `row` out as a scalar [`SizeCounts`] (the AoS adapter
    /// direction).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> SizeCounts {
        assert!(row < self.rows, "row {row} out of range");
        let base = row * SizeClass::COUNT;
        let mut counts = [0; SizeClass::COUNT];
        counts.copy_from_slice(&self.counts[base..base + SizeClass::COUNT]);
        SizeCounts { counts }
    }

    /// Per-frame DNN latency (ms) of camera `row` under greedy same-size
    /// batching — the same terms, summed in the same size-class order, as
    /// [`SizeCounts::latency_ms`], so the result is bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn latency_row_ms(&self, row: usize, profile: &LatencyProfile) -> f64 {
        assert!(row < self.rows, "row {row} out of range");
        let base = row * SizeClass::COUNT;
        SizeClass::ALL
            .iter()
            .map(|&s| {
                batches_needed(self.counts[base + s.index()], profile.batch_limit(s)) as f64
                    * profile.batch_latency_ms(s)
            })
            .sum()
    }
}

/// Greedy batch-sequence builder: collects size classes and emits concrete
/// batches (lists of task indices) per size.
///
/// # Examples
///
/// ```
/// use mvs_geometry::SizeClass;
/// use mvs_vision::BatchBuilder;
///
/// let mut b = BatchBuilder::new();
/// b.push(SizeClass::S64);
/// b.push(SizeClass::S128);
/// b.push(SizeClass::S64);
/// let batches = b.build(3); // batch limit 3 for every size
/// assert_eq!(batches.len(), 2); // one S64 batch (2 crops), one S128 batch
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchBuilder {
    tasks: Vec<SizeClass>,
}

/// A concrete batch: one size class and the indices (into the push order)
/// of the tasks it contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// The shared spatial size of every crop in this batch.
    pub size: SizeClass,
    /// Indices of the batched tasks in push order.
    pub task_indices: Vec<usize>,
}

impl BatchBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BatchBuilder::default()
    }

    /// Adds a task and returns its index.
    pub fn push(&mut self, size: SizeClass) -> usize {
        self.tasks.push(size);
        self.tasks.len() - 1
    }

    /// Removes all tasks, keeping the buffer's capacity so a per-frame
    /// batching bin can be refilled without reallocating.
    pub fn clear(&mut self) {
        self.tasks.clear();
    }

    /// Number of pushed tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks have been pushed.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Builds batches with a uniform `limit` for every size class.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn build(&self, limit: usize) -> Vec<Batch> {
        self.build_with(|_| limit)
    }

    /// Builds batches using the device profile's per-size batch limits.
    pub fn build_for(&self, profile: &LatencyProfile) -> Vec<Batch> {
        self.build_with(|s| profile.batch_limit(s))
    }

    fn build_with<F: Fn(SizeClass) -> usize>(&self, limit_of: F) -> Vec<Batch> {
        let mut out = Vec::new();
        for &size in &SizeClass::ALL {
            let limit = limit_of(size);
            assert!(limit > 0, "batch limit must be positive");
            let idx: Vec<usize> = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, &s)| s == size)
                .map(|(i, _)| i)
                .collect();
            for chunk in idx.chunks(limit) {
                out.push(Batch {
                    size,
                    task_indices: chunk.to_vec(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceKind;

    #[test]
    fn batches_needed_arithmetic() {
        assert_eq!(batches_needed(0, 4), 0);
        assert_eq!(batches_needed(1, 4), 1);
        assert_eq!(batches_needed(4, 4), 1);
        assert_eq!(batches_needed(5, 4), 2);
        assert_eq!(batches_needed(8, 4), 2);
    }

    #[test]
    #[should_panic(expected = "batch limit must be positive")]
    fn batches_needed_rejects_zero_limit() {
        batches_needed(3, 0);
    }

    #[test]
    fn size_counts_latency_matches_manual_math() {
        let p = LatencyProfile::for_device(DeviceKind::Xavier);
        let mut c = SizeCounts::new();
        for _ in 0..13 {
            c.add(SizeClass::S128); // limit 12 → 2 batches × 30 ms
        }
        c.add(SizeClass::S512); // limit 2 → 1 batch × 67 ms
        assert!((c.latency_ms(&p) - (2.0 * 30.0 + 67.0)).abs() < 1e-9);
        assert_eq!(c.batches(&p), [0, 2, 0, 1]);
    }

    #[test]
    fn open_batch_capacity_tracks_occupancy() {
        let p = LatencyProfile::for_device(DeviceKind::Xavier); // S64 limit 16
        let mut c = SizeCounts::new();
        assert_eq!(c.open_batch_capacity(SizeClass::S64, &p), 0);
        c.add(SizeClass::S64);
        assert_eq!(c.open_batch_capacity(SizeClass::S64, &p), 15);
        for _ in 0..15 {
            c.add(SizeClass::S64);
        }
        // Exactly full: no open batch.
        assert_eq!(c.open_batch_capacity(SizeClass::S64, &p), 0);
        c.add(SizeClass::S64);
        assert_eq!(c.open_batch_capacity(SizeClass::S64, &p), 15);
    }

    #[test]
    fn filling_open_batch_does_not_change_latency() {
        let p = LatencyProfile::for_device(DeviceKind::Tx2); // S256 limit 4
        let mut c = SizeCounts::from_sizes([SizeClass::S256]);
        let one = c.latency_ms(&p);
        c.add(SizeClass::S256);
        assert_eq!(c.latency_ms(&p), one);
        c.add(SizeClass::S256);
        c.add(SizeClass::S256);
        assert_eq!(c.latency_ms(&p), one);
        c.add(SizeClass::S256); // fifth crop opens a second batch
        assert!(c.latency_ms(&p) > one);
    }

    #[test]
    fn add_delta_is_batch_latency_exactly_on_batch_open() {
        let p = LatencyProfile::for_device(DeviceKind::Tx2); // S256 limit 4
        let mut c = SizeCounts::new();
        assert_eq!(
            c.add_with_delta(SizeClass::S256, &p),
            p.batch_latency_ms(SizeClass::S256)
        );
        for _ in 0..3 {
            assert_eq!(c.add_with_delta(SizeClass::S256, &p), 0.0); // fills batch 1
        }
        assert_eq!(
            c.add_with_delta(SizeClass::S256, &p),
            p.batch_latency_ms(SizeClass::S256) // opens batch 2
        );
    }

    #[test]
    fn remove_delta_mirrors_add_delta_even_at_limit_one() {
        let p = LatencyProfile::for_device(DeviceKind::Nano); // S512 limit 1
        let mut c = SizeCounts::new();
        // Empty removal: no-op, zero delta.
        assert_eq!(c.remove_with_delta(SizeClass::S512, &p), 0.0);
        c.add(SizeClass::S512);
        c.add(SizeClass::S512);
        // Limit 1 → every crop is its own batch, every removal closes one.
        assert_eq!(
            c.remove_with_delta(SizeClass::S512, &p),
            p.batch_latency_ms(SizeClass::S512)
        );
        assert_eq!(
            c.remove_with_delta(SizeClass::S512, &p),
            p.batch_latency_ms(SizeClass::S512)
        );
        assert!(c.is_empty());
    }

    #[test]
    fn remove_round_trip() {
        let mut c = SizeCounts::from_sizes([SizeClass::S64, SizeClass::S64]);
        assert!(c.remove(SizeClass::S64));
        assert_eq!(c.count(SizeClass::S64), 1);
        assert!(!c.remove(SizeClass::S512));
    }

    #[test]
    fn builder_groups_by_size_and_respects_limit() {
        let mut b = BatchBuilder::new();
        let i0 = b.push(SizeClass::S64);
        let i1 = b.push(SizeClass::S128);
        let i2 = b.push(SizeClass::S64);
        let i3 = b.push(SizeClass::S64);
        let batches = b.build(2);
        // S64: {i0,i2} then {i3}; S128: {i1}.
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].task_indices, vec![i0, i2]);
        assert_eq!(batches[1].task_indices, vec![i3]);
        assert_eq!(batches[2].task_indices, vec![i1]);
        assert_eq!(batches[2].size, SizeClass::S128);
    }

    #[test]
    fn builder_batch_count_matches_size_counts() {
        let p = LatencyProfile::for_device(DeviceKind::Nano);
        let sizes = [
            SizeClass::S64,
            SizeClass::S64,
            SizeClass::S64,
            SizeClass::S64,
            SizeClass::S64, // limit 4 → 2 batches
            SizeClass::S512,
            SizeClass::S512, // limit 1 → 2 batches
        ];
        let mut b = BatchBuilder::new();
        for s in sizes {
            b.push(s);
        }
        let concrete = b.build_for(&p);
        let counts = SizeCounts::from_sizes(sizes);
        let expected: usize = counts.batches(&p).iter().sum();
        assert_eq!(concrete.len(), expected);
    }
}
