//! Scalar (AoS) reference implementations of the data-oriented kernels.
//!
//! The production hot path runs on the column-major layouts
//! ([`FlowSoA`](crate::FlowSoA), [`mvs_geometry::BBoxSoA`],
//! [`SizeCountsBatch`](crate::SizeCountsBatch)). This module retains the
//! original array-of-structs implementations verbatim, for two purposes:
//!
//! * the differential proptests assert every SoA kernel bitwise-equal
//!   (`f64::to_bits`) to these references over randomized scenes;
//! * `bench_hotpath`'s scalar arm measures them against the SoA path on
//!   the same machine, making the speedup gate portable.
//!
//! They are **not** meant for production callers — use
//! [`FlowField`](crate::FlowField) and friends instead.

use crate::optical_flow::gaussian;
use crate::{FlowVector, GroundTruthObject};
use mvs_geometry::{BBox, Point2};
use std::collections::HashMap;

/// The original AoS + hash-map flow field, kept as the differential-test
/// reference for [`FlowSoA`](crate::FlowSoA).
#[derive(Debug, Clone, Default)]
pub struct ScalarFlowField {
    /// Previous-frame object boxes (the support of non-zero flow).
    prev: Vec<GroundTruthObject>,
    /// Noisy per-object displacement, keyed by ground-truth id.
    motions: HashMap<u64, Point2>,
    /// Clusters of moving pixels in the *current* frame.
    clusters: Vec<BBox>,
}

impl ScalarFlowField {
    /// Minimum displacement (pixels) for an object to register as "moving".
    pub const MOTION_EPSILON: f64 = 0.5;

    /// An empty field with no probed objects.
    #[must_use]
    pub fn empty() -> ScalarFlowField {
        ScalarFlowField::default()
    }

    /// Estimates flow between two frames described by their ground-truth
    /// object sets — the reference for
    /// [`FlowField::estimate`](crate::FlowField::estimate).
    pub fn estimate<R: rand::Rng + ?Sized>(
        prev: &[GroundTruthObject],
        curr: &[GroundTruthObject],
        noise_px: f64,
        rng: &mut R,
    ) -> ScalarFlowField {
        let mut field = ScalarFlowField::empty();
        field.estimate_into(prev, curr, noise_px, rng);
        field
    }

    /// Re-estimates this field in place — the reference for
    /// [`FlowField::estimate_into`](crate::FlowField::estimate_into),
    /// drawing the RNG in the identical order (two gaussians per current
    /// object).
    pub fn estimate_into<R: rand::Rng + ?Sized>(
        &mut self,
        prev: &[GroundTruthObject],
        curr: &[GroundTruthObject],
        noise_px: f64,
        rng: &mut R,
    ) {
        self.prev.clear();
        self.prev.extend_from_slice(prev);
        self.motions.clear();
        self.clusters.clear();
        for c in curr {
            let noise = Point2::new(gaussian(rng) * noise_px, gaussian(rng) * noise_px);
            // Last match wins, mirroring the id-keyed map (ids are unique
            // in practice).
            match prev.iter().rev().find(|p| p.id == c.id) {
                Some(p) => {
                    let motion = c.bbox.center() - p.bbox.center() + noise;
                    if motion.norm() > Self::MOTION_EPSILON {
                        self.clusters.push(c.bbox);
                    }
                    self.motions.insert(c.id, motion);
                }
                None => {
                    // Newly appeared object: all of its pixels changed, so
                    // it shows up as a moving cluster even though no
                    // displacement vector exists for it.
                    self.clusters.push(c.bbox);
                }
            }
        }
    }

    /// The flow displacement at a pixel of the *previous* frame — the
    /// reference for
    /// [`FlowField::displacement_at`](crate::FlowField::displacement_at).
    pub fn displacement_at(&self, p: Point2) -> FlowVector {
        let mut best: Option<(&GroundTruthObject, f64)> = None;
        for o in &self.prev {
            if o.bbox.contains_point(p) {
                let area = o.bbox.area();
                if best.is_none_or(|(_, a)| area < a) {
                    best = Some((o, area));
                }
            }
        }
        let displacement = best
            .and_then(|(o, _)| self.motions.get(&o.id).copied())
            .unwrap_or(Point2::ORIGIN);
        FlowVector { displacement }
    }

    /// Clusters of moving pixels in the current frame (object-sized boxes).
    pub fn moving_clusters(&self) -> &[BBox] {
        &self.clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowField;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn obj(id: u64, x: f64, y: f64, side: f64) -> GroundTruthObject {
        GroundTruthObject {
            id,
            bbox: BBox::new(x, y, x + side, y + side).unwrap(),
        }
    }

    #[test]
    fn reference_matches_soa_field_bitwise() {
        let prev = [obj(1, 0.0, 0.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let curr = [
            obj(1, 10.0, 0.0, 40.0),
            obj(2, 200.0, 200.0, 40.0),
            obj(3, 400.0, 100.0, 40.0),
        ];
        let mut rng_a = ChaCha8Rng::seed_from_u64(21);
        let mut rng_b = ChaCha8Rng::seed_from_u64(21);
        let scalar = ScalarFlowField::estimate(&prev, &curr, 1.5, &mut rng_a);
        let soa = FlowField::estimate(&prev, &curr, 1.5, &mut rng_b);
        assert_eq!(scalar.moving_clusters(), soa.moving_clusters());
        for p in [
            Point2::new(20.0, 20.0),
            Point2::new(220.0, 220.0),
            Point2::new(-1.0, 7.0),
        ] {
            let a = scalar.displacement_at(p).displacement;
            let b = soa.displacement_at(p).displacement;
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "x at {p:?}");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "y at {p:?}");
        }
        // Both consumed the RNG identically.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }
}
