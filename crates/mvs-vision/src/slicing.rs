//! Tracking-based image slicing.
//!
//! At regular frames the DNN inspects only small crops around the
//! flow-predicted object locations instead of the whole frame (Sec. II-B).
//! Each crop is a square of the track's quantized [`SizeClass`] side,
//! centred on the prediction and clamped to the frame.

use crate::{Track, TrackId};
use mvs_geometry::{BBox, FrameDims, SizeClass};
use mvs_trace::{span_into, Stage, TraceBuf};
use serde::{Deserialize, Serialize};

/// One partial-frame inspection task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionTask {
    /// The track this crop searches for (`None` for new-region probes).
    pub track: Option<TrackId>,
    /// Crop rectangle in frame coordinates.
    pub region: BBox,
    /// The quantized batchable size of the crop.
    pub size: SizeClass,
}

impl RegionTask {
    /// Builds a task for an anonymous region (new-object probe): the region
    /// is expanded to its quantized square and clamped to the frame.
    /// Returns `None` when the region lies outside the frame.
    pub fn for_region(region: BBox, frame: FrameDims) -> Option<RegionTask> {
        let size = SizeClass::quantize(region.width(), region.height());
        let crop = region
            .expanded_to_square(size.side() as f64)
            .clamped_to(frame)?;
        Some(RegionTask {
            track: None,
            region: crop,
            size,
        })
    }
}

/// Slices the current frame into one crop per track.
///
/// The crop side equals the track's fixed [`SizeClass`]; if the object has
/// grown past it, the crop still uses that side (the paper downsizes the
/// content rather than re-quantizing mid-horizon). Tracks whose crop falls
/// entirely outside the frame are skipped.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{BBox, FrameDims};
/// use mvs_vision::{slice_regions, FlowTracker, TrackerConfig};
///
/// let mut tracker = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
/// tracker.seed(BBox::new(100.0, 100.0, 150.0, 140.0)?, None);
/// let tasks = slice_regions(tracker.tracks(), FrameDims::REGULAR);
/// assert_eq!(tasks.len(), 1);
/// assert_eq!(tasks[0].size.side(), 64);
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
pub fn slice_regions(tracks: &[Track], frame: FrameDims) -> Vec<RegionTask> {
    let mut tasks = Vec::new();
    slice_regions_into(tracks, frame, &mut tasks);
    tasks
}

/// Buffer-reusing variant of [`slice_regions`]: clears `out` and fills it
/// with the same tasks, so the steady-state loop can slice every frame
/// without allocating once the buffer has reached its high-water capacity.
pub fn slice_regions_into(tracks: &[Track], frame: FrameDims, out: &mut Vec<RegionTask>) {
    out.clear();
    out.extend(tracks.iter().filter_map(|t| {
        let crop = t
            .bbox
            .expanded_to_square(t.size.side() as f64)
            .clamped_to(frame)?;
        Some(RegionTask {
            track: Some(t.id),
            region: crop,
            size: t.size,
        })
    }));
}

/// Traced variant of [`slice_regions`]: additionally records a
/// [`Stage::Slice`] span whose item count is the number of crops produced.
/// Slicing itself is pure geometry with negligible modeled cost, so the
/// span's duration is zero — it exists to witness the crop count and stage
/// order in golden traces.
pub fn slice_regions_traced(
    tracks: &[Track],
    frame: FrameDims,
    trace: Option<&mut TraceBuf>,
) -> Vec<RegionTask> {
    let tasks = slice_regions(tracks, frame);
    span_into(trace, Stage::Slice, 0.0, tasks.len());
    tasks
}

/// Buffer-reusing variant of [`slice_regions_traced`].
pub fn slice_regions_traced_into(
    tracks: &[Track],
    frame: FrameDims,
    trace: Option<&mut TraceBuf>,
    out: &mut Vec<RegionTask>,
) {
    slice_regions_into(tracks, frame, out);
    span_into(trace, Stage::Slice, 0.0, out.len());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowTracker, TrackerConfig};

    fn tracker_with(boxes: &[BBox]) -> FlowTracker {
        let mut t = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
        for &b in boxes {
            t.seed(b, None);
        }
        t
    }

    #[test]
    fn crop_is_centred_square_of_track_size() {
        let b = BBox::new(300.0, 300.0, 360.0, 340.0).unwrap();
        let t = tracker_with(&[b]);
        let tasks = slice_regions(t.tracks(), FrameDims::REGULAR);
        let task = tasks[0];
        assert_eq!(task.region.width(), task.size.side() as f64);
        assert_eq!(task.region.height(), task.size.side() as f64);
        assert_eq!(task.region.center(), b.center());
        assert!(task.region.contains_box(&b));
    }

    #[test]
    fn crop_at_frame_edge_is_clamped() {
        let b = BBox::new(0.0, 0.0, 50.0, 40.0).unwrap();
        let t = tracker_with(&[b]);
        let tasks = slice_regions(t.tracks(), FrameDims::REGULAR);
        let r = tasks[0].region;
        assert!(r.x1() >= 0.0 && r.y1() >= 0.0);
        assert!(r.width() <= tasks[0].size.side() as f64);
    }

    #[test]
    fn track_outside_frame_yields_no_task() {
        let t = tracker_with(&[BBox::new(100.0, 100.0, 150.0, 150.0).unwrap()]);
        // Manually push the track's box outside the frame to simulate drift
        // (predict() would normally drop it, but slicing must be safe too).
        let moved = t.tracks()[0]
            .bbox
            .translated(mvs_geometry::Point2::new(-4000.0, 0.0));
        let mut tr = t.tracks()[0].clone();
        tr.bbox = moved;
        let tasks = slice_regions(&[tr], FrameDims::REGULAR);
        assert!(tasks.is_empty());
    }

    #[test]
    fn anonymous_region_task_quantizes() {
        let region = BBox::new(500.0, 200.0, 570.0, 260.0).unwrap();
        let task = RegionTask::for_region(region, FrameDims::REGULAR).unwrap();
        assert_eq!(task.track, None);
        assert_eq!(task.size, SizeClass::S128);
        assert!(task.region.contains_box(&region));
        // Fully outside the frame → None.
        let outside = BBox::new(-300.0, -300.0, -200.0, -200.0).unwrap();
        assert!(RegionTask::for_region(outside, FrameDims::REGULAR).is_none());
    }

    #[test]
    fn one_task_per_live_track() {
        let boxes = [
            BBox::new(10.0, 10.0, 60.0, 60.0).unwrap(),
            BBox::new(200.0, 200.0, 360.0, 340.0).unwrap(),
            BBox::new(700.0, 100.0, 1100.0, 600.0).unwrap(),
        ];
        let t = tracker_with(&boxes);
        let tasks = slice_regions(t.tracks(), FrameDims::REGULAR);
        assert_eq!(tasks.len(), 3);
        // Sizes increase with object size.
        assert_eq!(tasks[0].size, SizeClass::S64);
        assert_eq!(tasks[1].size, SizeClass::S256);
        assert_eq!(tasks[2].size, SizeClass::S512);
    }
}
