//! Offline-profiled DNN execution-latency tables.
//!
//! The paper profiles YOLOv5 with 200 runs per (device, input size, batch
//! size) combination and feeds the resulting tables — full-frame latency
//! `t_i^full`, per-size batch latency `t_i^s`, and batch limit `B_i^s` —
//! into the BALB scheduler. The scheduler never touches the DNN itself, so
//! these tables are the entire hardware interface. The magnitudes below
//! follow published YOLOv5s benchmarks on the three Jetson generations.

use mvs_geometry::SizeClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The Jetson device generations used in the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// NVIDIA Jetson Nano (slowest; 128-core Maxwell).
    Nano,
    /// NVIDIA Jetson TX2 (256-core Pascal).
    Tx2,
    /// NVIDIA Jetson Xavier (fastest; 512-core Volta).
    Xavier,
}

impl DeviceKind {
    /// All device kinds, slowest first.
    pub const ALL: [DeviceKind; 3] = [DeviceKind::Nano, DeviceKind::Tx2, DeviceKind::Xavier];
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Nano => write!(f, "Jetson Nano"),
            DeviceKind::Tx2 => write!(f, "Jetson TX2"),
            DeviceKind::Xavier => write!(f, "Jetson Xavier"),
        }
    }
}

/// Profiled batch limit and latency for one input [`SizeClass`] on one
/// device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeProfile {
    /// Maximum number of same-size crops per GPU batch (`B_i^s`).
    pub batch_limit: usize,
    /// Execution latency of one batch at the batch limit, in ms (`t_i^s`).
    ///
    /// Per the paper's footnote 2, execution time changes only slightly with
    /// batch occupancy below the limit, so the at-limit time is charged for
    /// any batch.
    pub batch_latency_ms: f64,
}

/// The complete profiled latency table for one device.
///
/// # Examples
///
/// ```
/// use mvs_geometry::SizeClass;
/// use mvs_vision::{DeviceKind, LatencyProfile};
///
/// let xavier = LatencyProfile::for_device(DeviceKind::Xavier);
/// let nano = LatencyProfile::for_device(DeviceKind::Nano);
/// // The Nano is slower at everything.
/// assert!(nano.full_frame_ms() > xavier.full_frame_ms());
/// assert!(nano.batch_latency_ms(SizeClass::S128) > xavier.batch_latency_ms(SizeClass::S128));
/// // And batches fewer crops at once.
/// assert!(nano.batch_limit(SizeClass::S128) < xavier.batch_limit(SizeClass::S128));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    device: DeviceKind,
    full_frame_ms: f64,
    sizes: [SizeProfile; SizeClass::COUNT],
}

impl LatencyProfile {
    /// The built-in profile for a Jetson generation.
    pub fn for_device(device: DeviceKind) -> Self {
        // Batch latencies follow a pixel-proportional model anchored at the
        // device's full-frame time: t(batch) ≈ base + B·side²·rate with
        // rate = (t_full − base) / (1280·704). This keeps the tables
        // consistent with how DNN inference actually scales — a batch at
        // the limit costs roughly what its total pixel count implies — so
        // no camera can absorb unbounded work for free.
        let (full, sizes) = match device {
            // (batch_limit, batch_latency_ms) per size class 64/128/256/512.
            DeviceKind::Xavier => (110.0, [(16, 15.0), (12, 30.0), (8, 65.0), (2, 67.0)]),
            DeviceKind::Tx2 => (280.0, [(8, 22.0), (6, 41.0), (4, 90.0), (1, 92.0)]),
            DeviceKind::Nano => (650.0, [(4, 31.0), (3, 54.0), (2, 112.0), (1, 203.0)]),
        };
        LatencyProfile {
            device,
            full_frame_ms: full,
            sizes: sizes.map(|(batch_limit, batch_latency_ms)| SizeProfile {
                batch_limit,
                batch_latency_ms,
            }),
        }
    }

    /// Builds a custom profile (e.g. for sensitivity studies).
    ///
    /// # Panics
    ///
    /// Panics if any latency is non-positive or any batch limit is zero.
    pub fn custom(
        device: DeviceKind,
        full_frame_ms: f64,
        sizes: [SizeProfile; SizeClass::COUNT],
    ) -> Self {
        assert!(full_frame_ms > 0.0, "full-frame latency must be positive");
        for s in &sizes {
            assert!(s.batch_limit > 0, "batch limit must be positive");
            assert!(s.batch_latency_ms > 0.0, "batch latency must be positive");
        }
        LatencyProfile {
            device,
            full_frame_ms,
            sizes,
        }
    }

    /// A copy of this profile with every batch limit forced to one.
    ///
    /// Used by the batching ablation: BALB with `B ≡ 1` measures how much of
    /// the speedup comes from batch-awareness as opposed to latency
    /// balancing.
    pub fn without_batching(&self) -> Self {
        let mut p = self.clone();
        for s in &mut p.sizes {
            s.batch_limit = 1;
        }
        p
    }

    /// The device this profile describes.
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// Full-frame inspection latency `t_i^full`, in ms.
    pub fn full_frame_ms(&self) -> f64 {
        self.full_frame_ms
    }

    /// Batch limit `B_i^s` for a size class.
    pub fn batch_limit(&self, size: SizeClass) -> usize {
        self.sizes[size.index()].batch_limit
    }

    /// Batch execution latency `t_i^s` for a size class, in ms.
    pub fn batch_latency_ms(&self, size: SizeClass) -> f64 {
        self.sizes[size.index()].batch_latency_ms
    }

    /// A relative speed score (inverse full-frame latency); used by the
    /// static-partitioning baseline to size regions proportionally to
    /// processing power.
    pub fn speed_score(&self) -> f64 {
        1.0 / self.full_frame_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ordering_is_monotone() {
        let nano = LatencyProfile::for_device(DeviceKind::Nano);
        let tx2 = LatencyProfile::for_device(DeviceKind::Tx2);
        let xavier = LatencyProfile::for_device(DeviceKind::Xavier);
        assert!(nano.full_frame_ms() > tx2.full_frame_ms());
        assert!(tx2.full_frame_ms() > xavier.full_frame_ms());
        for s in SizeClass::ALL {
            assert!(nano.batch_latency_ms(s) > tx2.batch_latency_ms(s));
            assert!(tx2.batch_latency_ms(s) > xavier.batch_latency_ms(s));
            assert!(nano.batch_limit(s) <= tx2.batch_limit(s));
            assert!(tx2.batch_limit(s) <= xavier.batch_limit(s));
        }
    }

    #[test]
    fn larger_sizes_cost_more() {
        for d in DeviceKind::ALL {
            let p = LatencyProfile::for_device(d);
            for w in SizeClass::ALL.windows(2) {
                assert!(p.batch_latency_ms(w[0]) < p.batch_latency_ms(w[1]));
                assert!(p.batch_limit(w[0]) >= p.batch_limit(w[1]));
            }
        }
    }

    #[test]
    fn full_frame_exceeds_camera_period() {
        // The paper's premise: no device can run full-frame inspection at
        // 10 FPS (100 ms period).
        for d in DeviceKind::ALL {
            assert!(LatencyProfile::for_device(d).full_frame_ms() > 100.0);
        }
    }

    #[test]
    fn without_batching_clamps_limits() {
        let p = LatencyProfile::for_device(DeviceKind::Xavier).without_batching();
        for s in SizeClass::ALL {
            assert_eq!(p.batch_limit(s), 1);
        }
        // Latencies unchanged.
        assert_eq!(
            p.batch_latency_ms(SizeClass::S64),
            LatencyProfile::for_device(DeviceKind::Xavier).batch_latency_ms(SizeClass::S64)
        );
    }

    #[test]
    fn speed_score_ranks_devices() {
        let nano = LatencyProfile::for_device(DeviceKind::Nano);
        let xavier = LatencyProfile::for_device(DeviceKind::Xavier);
        assert!(xavier.speed_score() > nano.speed_score());
    }

    #[test]
    #[should_panic(expected = "batch limit must be positive")]
    fn custom_validates_limits() {
        let s = SizeProfile {
            batch_limit: 0,
            batch_latency_ms: 1.0,
        };
        LatencyProfile::custom(DeviceKind::Nano, 100.0, [s; 4]);
    }
}
