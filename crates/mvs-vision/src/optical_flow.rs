//! Simulated optical flow.
//!
//! The paper uses dense-inverse-search optical flow to (a) project tracked
//! object locations into the current frame and (b) find clusters of moving
//! pixels that belong to no tracked object — candidate new objects. With
//! statically mounted cameras, all pixel motion is object motion.
//!
//! This module simulates flow at the object level: the field knows the true
//! inter-frame displacement of every object and serves noisy displacement
//! queries *by pixel location* (never by object identity), which is exactly
//! the interface a real flow estimator offers.

use crate::GroundTruthObject;
use mvs_geometry::{BBox, Point2};
use rand::Rng;
use std::collections::HashMap;

/// A flow displacement sample (pixels moved between the two input frames).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowVector {
    /// Pixel displacement from the previous frame to the current frame.
    pub displacement: Point2,
}

/// A simulated dense optical-flow field between two consecutive frames.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{BBox, Point2};
/// use mvs_vision::{FlowField, GroundTruthObject};
/// use rand::SeedableRng;
///
/// let prev = [GroundTruthObject { id: 1, bbox: BBox::new(0.0, 0.0, 50.0, 50.0)? }];
/// let curr = [GroundTruthObject { id: 1, bbox: BBox::new(10.0, 0.0, 60.0, 50.0)? }];
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
/// // Querying inside the object's previous box returns its motion.
/// let v = flow.displacement_at(Point2::new(25.0, 25.0));
/// assert_eq!(v.displacement, Point2::new(10.0, 0.0));
/// // Background pixels do not move (static camera).
/// assert_eq!(flow.displacement_at(Point2::new(500.0, 500.0)).displacement, Point2::ORIGIN);
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowField {
    /// Previous-frame object boxes (the support of non-zero flow).
    prev: Vec<GroundTruthObject>,
    /// Noisy per-object displacement, keyed by ground-truth id. Internal
    /// only — lookups go through pixel positions.
    motions: HashMap<u64, Point2>,
    /// Clusters of moving pixels in the *current* frame.
    clusters: Vec<BBox>,
}

impl Default for FlowField {
    fn default() -> Self {
        FlowField::empty()
    }
}

impl FlowField {
    /// Minimum displacement (pixels) for an object to register as "moving".
    pub const MOTION_EPSILON: f64 = 0.5;

    /// An empty field with no probed objects (every query returns zero
    /// motion). The natural initial value for a per-worker scratch field
    /// that is refilled each frame via [`FlowField::estimate_into`].
    #[must_use]
    pub fn empty() -> FlowField {
        FlowField {
            prev: Vec::new(),
            motions: HashMap::new(),
            clusters: Vec::new(),
        }
    }

    /// Estimates flow between two frames described by their ground-truth
    /// object sets. `noise_px` is the standard deviation of the estimation
    /// noise added to each displacement component.
    pub fn estimate<R: Rng + ?Sized>(
        prev: &[GroundTruthObject],
        curr: &[GroundTruthObject],
        noise_px: f64,
        rng: &mut R,
    ) -> FlowField {
        let mut field = FlowField::empty();
        field.estimate_into(prev, curr, noise_px, rng);
        field
    }

    /// Re-estimates this field in place, reusing its buffers — the
    /// steady-state loop's allocation-free path. Produces exactly the field
    /// [`FlowField::estimate`] would, drawing the RNG in the same order
    /// (two gaussians per current object, whether or not it existed in the
    /// previous frame).
    pub fn estimate_into<R: Rng + ?Sized>(
        &mut self,
        prev: &[GroundTruthObject],
        curr: &[GroundTruthObject],
        noise_px: f64,
        rng: &mut R,
    ) {
        self.prev.clear();
        self.prev.extend_from_slice(prev);
        self.motions.clear();
        self.clusters.clear();
        for c in curr {
            let noise = Point2::new(gaussian(rng) * noise_px, gaussian(rng) * noise_px);
            // Last match wins, mirroring the id-keyed map the batch
            // constructor used to build (ids are unique in practice).
            match prev.iter().rev().find(|p| p.id == c.id) {
                Some(p) => {
                    let motion = c.bbox.center() - p.bbox.center() + noise;
                    if motion.norm() > Self::MOTION_EPSILON {
                        self.clusters.push(c.bbox);
                    }
                    self.motions.insert(c.id, motion);
                }
                None => {
                    // Newly appeared object: all of its pixels changed, so it
                    // shows up as a moving cluster even though no
                    // displacement vector exists for it.
                    self.clusters.push(c.bbox);
                }
            }
        }
    }

    /// The flow displacement at a pixel of the *previous* frame.
    ///
    /// Pixels inside a previous-frame object box move with that object;
    /// background pixels are static (the cameras are statically mounted).
    /// When boxes overlap, the smaller (closer) object wins.
    pub fn displacement_at(&self, p: Point2) -> FlowVector {
        let mut best: Option<(&GroundTruthObject, f64)> = None;
        for o in &self.prev {
            if o.bbox.contains_point(p) {
                let area = o.bbox.area();
                if best.is_none_or(|(_, a)| area < a) {
                    best = Some((o, area));
                }
            }
        }
        let displacement = best
            .and_then(|(o, _)| self.motions.get(&o.id).copied())
            .unwrap_or(Point2::ORIGIN);
        FlowVector { displacement }
    }

    /// Clusters of moving pixels in the current frame (object-sized boxes).
    ///
    /// Includes both moving known objects and newly appeared objects; the
    /// new-region detector subtracts predicted track boxes from this list.
    pub fn moving_clusters(&self) -> &[BBox] {
        &self.clusters
    }
}

/// One standard normal draw (Box–Muller).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn obj(id: u64, x: f64, y: f64, side: f64) -> GroundTruthObject {
        GroundTruthObject {
            id,
            bbox: BBox::new(x, y, x + side, y + side).unwrap(),
        }
    }

    #[test]
    fn noiseless_flow_is_exact() {
        let prev = [obj(1, 0.0, 0.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let curr = [obj(1, 5.0, 3.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        assert_eq!(
            flow.displacement_at(Point2::new(20.0, 20.0)).displacement,
            Point2::new(5.0, 3.0)
        );
        // Object 2 did not move.
        assert_eq!(
            flow.displacement_at(Point2::new(220.0, 220.0)).displacement,
            Point2::ORIGIN
        );
    }

    #[test]
    fn moving_clusters_only_for_movers_and_newcomers() {
        let prev = [obj(1, 0.0, 0.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let curr = [
            obj(1, 10.0, 0.0, 40.0),    // moved
            obj(2, 200.0, 200.0, 40.0), // static
            obj(3, 400.0, 100.0, 40.0), // new
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        let clusters = flow.moving_clusters();
        assert_eq!(clusters.len(), 2);
        assert!(clusters.iter().any(|c| *c == curr[0].bbox));
        assert!(clusters.iter().any(|c| *c == curr[2].bbox));
    }

    #[test]
    fn overlapping_boxes_prefer_smaller_object() {
        // A small object in front of a large one: the small box's pixels
        // should carry the small object's motion.
        let prev = [
            GroundTruthObject {
                id: 1,
                bbox: BBox::new(0.0, 0.0, 200.0, 200.0).unwrap(),
            },
            GroundTruthObject {
                id: 2,
                bbox: BBox::new(50.0, 50.0, 90.0, 90.0).unwrap(),
            },
        ];
        let curr = [
            GroundTruthObject {
                id: 1,
                bbox: BBox::new(2.0, 0.0, 202.0, 200.0).unwrap(),
            },
            GroundTruthObject {
                id: 2,
                bbox: BBox::new(60.0, 50.0, 100.0, 90.0).unwrap(),
            },
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        let v = flow.displacement_at(Point2::new(70.0, 70.0));
        assert_eq!(v.displacement, Point2::new(10.0, 0.0));
    }

    #[test]
    fn noise_perturbs_but_is_bounded_in_distribution() {
        let prev = [obj(1, 100.0, 100.0, 60.0)];
        let curr = [obj(1, 110.0, 100.0, 60.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut total_err = 0.0;
        let n = 200;
        for _ in 0..n {
            let flow = FlowField::estimate(&prev, &curr, 1.5, &mut rng);
            let v = flow.displacement_at(Point2::new(130.0, 130.0)).displacement;
            total_err += (v - Point2::new(10.0, 0.0)).norm();
        }
        let mean_err = total_err / n as f64;
        // Mean error of a 2-D gaussian with sigma 1.5 ≈ 1.88.
        assert!(mean_err > 0.5 && mean_err < 4.0, "mean error {mean_err}");
    }

    #[test]
    fn query_outside_every_probed_box_is_static() {
        // Points beyond the probed grid — outside all previous-frame boxes,
        // including negative coordinates — must read as background.
        let prev = [obj(1, 100.0, 100.0, 40.0)];
        let curr = [obj(1, 110.0, 100.0, 40.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        for p in [
            Point2::new(-50.0, -50.0),
            Point2::new(99.9, 120.0),
            Point2::new(140.1, 120.0),
            Point2::new(1e9, 1e9),
        ] {
            assert_eq!(flow.displacement_at(p).displacement, Point2::ORIGIN);
        }
    }

    #[test]
    fn static_scene_yields_empty_cluster_set() {
        // Nothing moved and nothing appeared: no clusters at all, and the
        // empty slice must be stable across repeated calls.
        let prev = [obj(1, 0.0, 0.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let flow = FlowField::estimate(&prev, &prev, 0.0, &mut rng);
        assert!(flow.moving_clusters().is_empty());
        assert!(flow.moving_clusters().is_empty());
        let empty = FlowField::empty();
        assert!(empty.moving_clusters().is_empty());
        assert_eq!(
            empty.displacement_at(Point2::new(10.0, 10.0)).displacement,
            Point2::ORIGIN
        );
    }

    #[test]
    fn single_probe_field_answers_inside_and_outside() {
        // A one-object field: the box boundary separates the object's
        // motion from the static background exactly.
        let prev = [obj(9, 50.0, 50.0, 30.0)];
        let curr = [obj(9, 53.0, 46.0, 30.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        let motion = Point2::new(3.0, -4.0);
        assert_eq!(
            flow.displacement_at(Point2::new(65.0, 65.0)).displacement,
            motion
        );
        // Box corners are inclusive; just past them is background.
        assert_eq!(
            flow.displacement_at(Point2::new(50.0, 50.0)).displacement,
            motion
        );
        assert_eq!(
            flow.displacement_at(Point2::new(80.0, 80.0)).displacement,
            motion
        );
        assert_eq!(
            flow.displacement_at(Point2::new(80.1, 80.0)).displacement,
            Point2::ORIGIN
        );
        assert_eq!(flow.moving_clusters(), &[curr[0].bbox]);
    }

    #[test]
    fn estimate_into_reuses_buffers_and_matches_estimate() {
        let prev = [obj(1, 0.0, 0.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let curr = [obj(1, 10.0, 0.0, 40.0), obj(3, 400.0, 100.0, 40.0)];
        let mut rng_a = ChaCha8Rng::seed_from_u64(13);
        let mut rng_b = ChaCha8Rng::seed_from_u64(13);
        let batch = FlowField::estimate(&prev, &curr, 1.0, &mut rng_a);
        let mut scratch = FlowField::empty();
        // Pollute the scratch with an unrelated frame first.
        scratch.estimate_into(&curr, &prev, 1.0, &mut ChaCha8Rng::seed_from_u64(99));
        scratch.estimate_into(&prev, &curr, 1.0, &mut rng_b);
        assert_eq!(scratch.moving_clusters(), batch.moving_clusters());
        for p in [
            Point2::new(20.0, 20.0),
            Point2::new(220.0, 220.0),
            Point2::new(410.0, 110.0),
            Point2::new(-5.0, 3.0),
        ] {
            assert_eq!(
                scratch.displacement_at(p).displacement,
                batch.displacement_at(p).displacement,
                "at {p:?}"
            );
        }
        // The RNG streams advanced identically.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn disappeared_object_contributes_nothing() {
        let prev = [obj(1, 0.0, 0.0, 40.0)];
        let curr: [GroundTruthObject; 0] = [];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        assert!(flow.moving_clusters().is_empty());
        // Query inside the vanished object's old box: no motion info.
        assert_eq!(
            flow.displacement_at(Point2::new(20.0, 20.0)).displacement,
            Point2::ORIGIN
        );
    }
}
