//! Simulated optical flow.
//!
//! The paper uses dense-inverse-search optical flow to (a) project tracked
//! object locations into the current frame and (b) find clusters of moving
//! pixels that belong to no tracked object — candidate new objects. With
//! statically mounted cameras, all pixel motion is object motion.
//!
//! This module simulates flow at the object level: the field knows the true
//! inter-frame displacement of every object and serves noisy displacement
//! queries *by pixel location* (never by object identity), which is exactly
//! the interface a real flow estimator offers.
//!
//! Internally the field is stored in data-oriented form ([`FlowSoA`]):
//! previous-frame boxes live in [`BBoxSoA`] columns and per-box motion in
//! flat `dx`/`dy` columns, so the displacement lookup — the innermost loop
//! of track prediction — scans contiguous `f64` slices instead of chasing
//! an id-keyed hash map through an array of structs. [`FlowField`] is the
//! thin AoS-facing adapter kept for existing callers; it produces bitwise
//! identical results to the retained scalar reference
//! ([`ScalarFlowField`](crate::ScalarFlowField)), which the differential
//! proptests enforce.

use crate::GroundTruthObject;
use mvs_geometry::{BBox, BBoxSoA, Point2};
use rand::Rng;

/// A flow displacement sample (pixels moved between the two input frames).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowVector {
    /// Pixel displacement from the previous frame to the current frame.
    pub displacement: Point2,
}

/// Column-major flow-field storage: the data-oriented core of
/// [`FlowField`].
///
/// Previous-frame boxes are [`BBoxSoA`] columns with a parallel id column;
/// each box's displacement (if one exists for its id) is resolved once at
/// estimation time into flat `dx`/`dy` columns, so
/// [`displacement_at`](FlowSoA::displacement_at) is a pure column scan with
/// no hashing and no pointer chasing.
#[derive(Debug, Clone, Default)]
pub struct FlowSoA {
    /// Previous-frame object boxes (the support of non-zero flow).
    boxes: BBoxSoA,
    /// Ground-truth id of each previous-frame box.
    ids: Vec<u64>,
    /// Resolved per-box displacement columns; meaningful only where
    /// `has_motion` is set.
    motion_dx: Vec<f64>,
    motion_dy: Vec<f64>,
    /// Whether a displacement vector exists for the box's id (the id also
    /// appeared in the current frame).
    has_motion: Vec<bool>,
    /// Clusters of moving pixels in the *current* frame.
    clusters: Vec<BBox>,
    /// Insertion-ordered (id, motion) pairs recorded while walking the
    /// current frame — the flat stand-in for the scalar path's id-keyed
    /// map (later inserts shadow earlier ones on lookup).
    pending: Vec<(u64, Point2)>,
}

impl FlowSoA {
    /// Minimum displacement (pixels) for an object to register as "moving".
    pub const MOTION_EPSILON: f64 = 0.5;

    /// An empty field with no probed objects (every query returns zero
    /// motion).
    #[must_use]
    pub fn empty() -> FlowSoA {
        FlowSoA::default()
    }

    /// Number of previous-frame boxes the field knows about.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the field holds no previous-frame boxes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Re-estimates this field in place, reusing every column buffer — the
    /// steady-state loop's allocation-free path. Draws the RNG in the same
    /// order as the scalar reference (two gaussians per current object,
    /// whether or not it existed in the previous frame) and computes each
    /// motion with the same expressions, so the resulting field is bitwise
    /// identical to [`ScalarFlowField`](crate::ScalarFlowField).
    pub fn estimate_into<R: Rng + ?Sized>(
        &mut self,
        prev: &[GroundTruthObject],
        curr: &[GroundTruthObject],
        noise_px: f64,
        rng: &mut R,
    ) {
        self.boxes.clear();
        self.ids.clear();
        self.clusters.clear();
        self.pending.clear();
        for p in prev {
            self.boxes.push(p.bbox);
            self.ids.push(p.id);
        }
        for c in curr {
            let noise = Point2::new(gaussian(rng) * noise_px, gaussian(rng) * noise_px);
            // Last match wins, mirroring the id-keyed map of the scalar
            // path (ids are unique in practice).
            match self.ids.iter().rposition(|&id| id == c.id) {
                Some(pi) => {
                    let motion = c.bbox.center() - self.boxes.center(pi) + noise;
                    if motion.norm() > Self::MOTION_EPSILON {
                        self.clusters.push(c.bbox);
                    }
                    self.pending.push((c.id, motion));
                }
                None => {
                    // Newly appeared object: all of its pixels changed, so it
                    // shows up as a moving cluster even though no
                    // displacement vector exists for it.
                    self.clusters.push(c.bbox);
                }
            }
        }
        // Resolve the id-keyed motions into per-box columns once, so every
        // later displacement query is a straight column read. Scanning
        // `pending` backwards reproduces the map's last-insert-wins lookup.
        let n = self.ids.len();
        self.motion_dx.clear();
        self.motion_dx.resize(n, 0.0);
        self.motion_dy.clear();
        self.motion_dy.resize(n, 0.0);
        self.has_motion.clear();
        self.has_motion.resize(n, false);
        for i in 0..n {
            let id = self.ids[i];
            if let Some(&(_, m)) = self.pending.iter().rev().find(|&&(pid, _)| pid == id) {
                self.motion_dx[i] = m.x;
                self.motion_dy[i] = m.y;
                self.has_motion[i] = true;
            }
        }
    }

    /// The flow displacement at a pixel of the *previous* frame.
    ///
    /// Pixels inside a previous-frame object box move with that object;
    /// background pixels are static (the cameras are statically mounted).
    /// When boxes overlap, the smaller (closer) object wins; ties break to
    /// the earlier box, exactly like the scalar scan.
    pub fn displacement_at(&self, p: Point2) -> FlowVector {
        let displacement = match self.boxes.smallest_containing(p) {
            Some(i) if self.has_motion[i] => Point2::new(self.motion_dx[i], self.motion_dy[i]),
            _ => Point2::ORIGIN,
        };
        FlowVector { displacement }
    }

    /// Clusters of moving pixels in the current frame (object-sized boxes).
    pub fn moving_clusters(&self) -> &[BBox] {
        &self.clusters
    }

    /// Batched displacement lookup: fills `out` with the displacement at
    /// each query point, element `j` bitwise equal to
    /// `displacement_at(points[j]).displacement`.
    ///
    /// Track prediction queries the field once per live track; doing all
    /// queries in one call flips the loop nest so each previous-frame box
    /// is loaded once and tested against every query point — a
    /// branch-light column sweep instead of `points.len()` independent
    /// scans. `best_area`/`best` are caller-owned scratch columns
    /// (cleared and refilled), keeping the steady state allocation-free.
    /// The per-query selection rule is unchanged: smallest containing box
    /// wins, ties to the earliest index, since a strict `area <` update
    /// over boxes in index order picks exactly that box.
    pub fn displacements_at_into(
        &self,
        points: &[Point2],
        best_area: &mut Vec<f64>,
        best: &mut Vec<u32>,
        out: &mut Vec<Point2>,
    ) {
        let q = points.len();
        best_area.clear();
        best_area.resize(q, f64::INFINITY);
        best.clear();
        best.resize(q, u32::MAX);
        let n = self.len();
        let (x1, y1, x2, y2) = self.boxes.columns();
        for i in 0..n {
            let (bx1, by1, bx2, by2) = (x1[i], y1[i], x2[i], y2[i]);
            let area = (bx2 - bx1) * (by2 - by1);
            for (j, p) in points.iter().enumerate() {
                let inside = p.x >= bx1 && p.x <= bx2 && p.y >= by1 && p.y <= by2;
                if inside && area < best_area[j] {
                    best_area[j] = area;
                    best[j] = i as u32;
                }
            }
        }
        out.clear();
        out.extend(best.iter().map(|&b| {
            if b == u32::MAX {
                Point2::ORIGIN
            } else {
                let i = b as usize;
                if self.has_motion[i] {
                    Point2::new(self.motion_dx[i], self.motion_dy[i])
                } else {
                    Point2::ORIGIN
                }
            }
        }));
    }
}

/// A simulated dense optical-flow field between two consecutive frames.
///
/// This is the AoS-facing entry point kept for existing callers; it is a
/// thin adapter over [`FlowSoA`], which holds the actual column-major
/// state.
///
/// # Examples
///
/// ```
/// use mvs_geometry::{BBox, Point2};
/// use mvs_vision::{FlowField, GroundTruthObject};
/// use rand::SeedableRng;
///
/// let prev = [GroundTruthObject { id: 1, bbox: BBox::new(0.0, 0.0, 50.0, 50.0)? }];
/// let curr = [GroundTruthObject { id: 1, bbox: BBox::new(10.0, 0.0, 60.0, 50.0)? }];
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
/// // Querying inside the object's previous box returns its motion.
/// let v = flow.displacement_at(Point2::new(25.0, 25.0));
/// assert_eq!(v.displacement, Point2::new(10.0, 0.0));
/// // Background pixels do not move (static camera).
/// assert_eq!(flow.displacement_at(Point2::new(500.0, 500.0)).displacement, Point2::ORIGIN);
/// # Ok::<(), mvs_geometry::BBoxError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowField {
    soa: FlowSoA,
}

impl FlowField {
    /// Minimum displacement (pixels) for an object to register as "moving".
    pub const MOTION_EPSILON: f64 = FlowSoA::MOTION_EPSILON;

    /// An empty field with no probed objects (every query returns zero
    /// motion). The natural initial value for a per-worker scratch field
    /// that is refilled each frame via [`FlowField::estimate_into`].
    #[must_use]
    pub fn empty() -> FlowField {
        FlowField::default()
    }

    /// Estimates flow between two frames described by their ground-truth
    /// object sets. `noise_px` is the standard deviation of the estimation
    /// noise added to each displacement component.
    pub fn estimate<R: Rng + ?Sized>(
        prev: &[GroundTruthObject],
        curr: &[GroundTruthObject],
        noise_px: f64,
        rng: &mut R,
    ) -> FlowField {
        let mut field = FlowField::empty();
        field.estimate_into(prev, curr, noise_px, rng);
        field
    }

    /// Re-estimates this field in place, reusing its buffers — the
    /// steady-state loop's allocation-free path. Produces exactly the field
    /// [`FlowField::estimate`] would, drawing the RNG in the same order
    /// (two gaussians per current object, whether or not it existed in the
    /// previous frame).
    pub fn estimate_into<R: Rng + ?Sized>(
        &mut self,
        prev: &[GroundTruthObject],
        curr: &[GroundTruthObject],
        noise_px: f64,
        rng: &mut R,
    ) {
        self.soa.estimate_into(prev, curr, noise_px, rng);
    }

    /// The flow displacement at a pixel of the *previous* frame.
    ///
    /// Pixels inside a previous-frame object box move with that object;
    /// background pixels are static (the cameras are statically mounted).
    /// When boxes overlap, the smaller (closer) object wins.
    pub fn displacement_at(&self, p: Point2) -> FlowVector {
        self.soa.displacement_at(p)
    }

    /// Clusters of moving pixels in the current frame (object-sized boxes).
    ///
    /// Includes both moving known objects and newly appeared objects; the
    /// new-region detector subtracts predicted track boxes from this list.
    pub fn moving_clusters(&self) -> &[BBox] {
        self.soa.moving_clusters()
    }

    /// The column-major state backing this field.
    pub fn soa(&self) -> &FlowSoA {
        &self.soa
    }
}

/// One standard normal draw (Box–Muller).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn obj(id: u64, x: f64, y: f64, side: f64) -> GroundTruthObject {
        GroundTruthObject {
            id,
            bbox: BBox::new(x, y, x + side, y + side).unwrap(),
        }
    }

    #[test]
    fn noiseless_flow_is_exact() {
        let prev = [obj(1, 0.0, 0.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let curr = [obj(1, 5.0, 3.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        assert_eq!(
            flow.displacement_at(Point2::new(20.0, 20.0)).displacement,
            Point2::new(5.0, 3.0)
        );
        // Object 2 did not move.
        assert_eq!(
            flow.displacement_at(Point2::new(220.0, 220.0)).displacement,
            Point2::ORIGIN
        );
    }

    #[test]
    fn moving_clusters_only_for_movers_and_newcomers() {
        let prev = [obj(1, 0.0, 0.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let curr = [
            obj(1, 10.0, 0.0, 40.0),    // moved
            obj(2, 200.0, 200.0, 40.0), // static
            obj(3, 400.0, 100.0, 40.0), // new
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        let clusters = flow.moving_clusters();
        assert_eq!(clusters.len(), 2);
        assert!(clusters.iter().any(|c| *c == curr[0].bbox));
        assert!(clusters.iter().any(|c| *c == curr[2].bbox));
    }

    #[test]
    fn overlapping_boxes_prefer_smaller_object() {
        // A small object in front of a large one: the small box's pixels
        // should carry the small object's motion.
        let prev = [
            GroundTruthObject {
                id: 1,
                bbox: BBox::new(0.0, 0.0, 200.0, 200.0).unwrap(),
            },
            GroundTruthObject {
                id: 2,
                bbox: BBox::new(50.0, 50.0, 90.0, 90.0).unwrap(),
            },
        ];
        let curr = [
            GroundTruthObject {
                id: 1,
                bbox: BBox::new(2.0, 0.0, 202.0, 200.0).unwrap(),
            },
            GroundTruthObject {
                id: 2,
                bbox: BBox::new(60.0, 50.0, 100.0, 90.0).unwrap(),
            },
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        let v = flow.displacement_at(Point2::new(70.0, 70.0));
        assert_eq!(v.displacement, Point2::new(10.0, 0.0));
    }

    #[test]
    fn noise_perturbs_but_is_bounded_in_distribution() {
        let prev = [obj(1, 100.0, 100.0, 60.0)];
        let curr = [obj(1, 110.0, 100.0, 60.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut total_err = 0.0;
        let n = 200;
        for _ in 0..n {
            let flow = FlowField::estimate(&prev, &curr, 1.5, &mut rng);
            let v = flow.displacement_at(Point2::new(130.0, 130.0)).displacement;
            total_err += (v - Point2::new(10.0, 0.0)).norm();
        }
        let mean_err = total_err / n as f64;
        // Mean error of a 2-D gaussian with sigma 1.5 ≈ 1.88.
        assert!(mean_err > 0.5 && mean_err < 4.0, "mean error {mean_err}");
    }

    #[test]
    fn query_outside_every_probed_box_is_static() {
        // Points beyond the probed grid — outside all previous-frame boxes,
        // including negative coordinates — must read as background.
        let prev = [obj(1, 100.0, 100.0, 40.0)];
        let curr = [obj(1, 110.0, 100.0, 40.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        for p in [
            Point2::new(-50.0, -50.0),
            Point2::new(99.9, 120.0),
            Point2::new(140.1, 120.0),
            Point2::new(1e9, 1e9),
        ] {
            assert_eq!(flow.displacement_at(p).displacement, Point2::ORIGIN);
        }
    }

    #[test]
    fn static_scene_yields_empty_cluster_set() {
        // Nothing moved and nothing appeared: no clusters at all, and the
        // empty slice must be stable across repeated calls.
        let prev = [obj(1, 0.0, 0.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let flow = FlowField::estimate(&prev, &prev, 0.0, &mut rng);
        assert!(flow.moving_clusters().is_empty());
        assert!(flow.moving_clusters().is_empty());
        let empty = FlowField::empty();
        assert!(empty.moving_clusters().is_empty());
        assert!(empty.soa().is_empty());
        assert_eq!(
            empty.displacement_at(Point2::new(10.0, 10.0)).displacement,
            Point2::ORIGIN
        );
    }

    #[test]
    fn single_probe_field_answers_inside_and_outside() {
        // A one-object field: the box boundary separates the object's
        // motion from the static background exactly.
        let prev = [obj(9, 50.0, 50.0, 30.0)];
        let curr = [obj(9, 53.0, 46.0, 30.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        let motion = Point2::new(3.0, -4.0);
        assert_eq!(
            flow.displacement_at(Point2::new(65.0, 65.0)).displacement,
            motion
        );
        // Box corners are inclusive; just past them is background.
        assert_eq!(
            flow.displacement_at(Point2::new(50.0, 50.0)).displacement,
            motion
        );
        assert_eq!(
            flow.displacement_at(Point2::new(80.0, 80.0)).displacement,
            motion
        );
        assert_eq!(
            flow.displacement_at(Point2::new(80.1, 80.0)).displacement,
            Point2::ORIGIN
        );
        assert_eq!(flow.moving_clusters(), &[curr[0].bbox]);
    }

    #[test]
    fn estimate_into_reuses_buffers_and_matches_estimate() {
        let prev = [obj(1, 0.0, 0.0, 40.0), obj(2, 200.0, 200.0, 40.0)];
        let curr = [obj(1, 10.0, 0.0, 40.0), obj(3, 400.0, 100.0, 40.0)];
        let mut rng_a = ChaCha8Rng::seed_from_u64(13);
        let mut rng_b = ChaCha8Rng::seed_from_u64(13);
        let batch = FlowField::estimate(&prev, &curr, 1.0, &mut rng_a);
        let mut scratch = FlowField::empty();
        // Pollute the scratch with an unrelated frame first.
        scratch.estimate_into(&curr, &prev, 1.0, &mut ChaCha8Rng::seed_from_u64(99));
        scratch.estimate_into(&prev, &curr, 1.0, &mut rng_b);
        assert_eq!(scratch.moving_clusters(), batch.moving_clusters());
        for p in [
            Point2::new(20.0, 20.0),
            Point2::new(220.0, 220.0),
            Point2::new(410.0, 110.0),
            Point2::new(-5.0, 3.0),
        ] {
            assert_eq!(
                scratch.displacement_at(p).displacement,
                batch.displacement_at(p).displacement,
                "at {p:?}"
            );
        }
        // The RNG streams advanced identically.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn disappeared_object_contributes_nothing() {
        let prev = [obj(1, 0.0, 0.0, 40.0)];
        let curr: [GroundTruthObject; 0] = [];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        assert!(flow.moving_clusters().is_empty());
        assert_eq!(flow.soa().len(), 1);
        // Query inside the vanished object's old box: no motion info.
        assert_eq!(
            flow.displacement_at(Point2::new(20.0, 20.0)).displacement,
            Point2::ORIGIN
        );
    }

    #[test]
    fn batched_lookup_matches_single_queries_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let prev = [
            obj(1, 0.0, 0.0, 40.0),
            obj(2, 20.0, 20.0, 80.0), // overlaps obj 1: smallest-wins tie
            obj(3, 500.0, 300.0, 60.0),
        ];
        let curr = [
            obj(1, 6.0, 0.0, 40.0),
            obj(2, 20.0, 24.0, 80.0),
            obj(4, 900.0, 10.0, 30.0),
        ];
        let flow = FlowField::estimate(&prev, &curr, 1.5, &mut rng);
        let points: Vec<Point2> = [
            (20.0, 20.0),
            (30.0, 30.0), // in both obj 1 and obj 2's boxes
            (520.0, 320.0),
            (-5.0, 700.0), // background
        ]
        .into_iter()
        .map(|(x, y)| Point2::new(x, y))
        .collect();
        let (mut best_area, mut best, mut out) = (Vec::new(), Vec::new(), Vec::new());
        flow.soa()
            .displacements_at_into(&points, &mut best_area, &mut best, &mut out);
        assert_eq!(out.len(), points.len());
        for (p, got) in points.iter().zip(&out) {
            let want = flow.displacement_at(*p).displacement;
            assert_eq!(want.x.to_bits(), got.x.to_bits(), "x at {p:?}");
            assert_eq!(want.y.to_bits(), got.y.to_bits(), "y at {p:?}");
        }
        // Scratch reuse with a different query set stays consistent.
        let points2 = [Point2::new(25.0, 25.0)];
        flow.soa()
            .displacements_at_into(&points2, &mut best_area, &mut best, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], flow.displacement_at(points2[0]).displacement);
    }

    #[test]
    fn duplicate_ids_resolve_like_an_id_keyed_map() {
        // Two previous boxes share an id (degenerate input): both must
        // carry the single motion recorded for that id, and the current
        // frame's last write wins — exactly the scalar map semantics.
        let prev = [obj(7, 0.0, 0.0, 40.0), obj(7, 200.0, 0.0, 40.0)];
        let curr = [obj(7, 206.0, 0.0, 40.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let flow = FlowField::estimate(&prev, &curr, 0.0, &mut rng);
        // Motion is measured against the *last* matching previous box.
        let motion = Point2::new(6.0, 0.0);
        assert_eq!(
            flow.displacement_at(Point2::new(20.0, 20.0)).displacement,
            motion
        );
        assert_eq!(
            flow.displacement_at(Point2::new(220.0, 20.0)).displacement,
            motion
        );
    }
}
