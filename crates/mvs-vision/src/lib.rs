//! Vision substrate for multi-view scheduling.
//!
//! The paper runs YOLOv5 on NVIDIA Jetson boards; this crate replaces that
//! hardware-gated stack with a faithful simulation of the parts the
//! scheduler actually interacts with:
//!
//! * [`LatencyProfile`] — the offline-profiled execution-time tables
//!   (`t_i^full`, `t_i^s`, batch limits `B_i^s`) that the paper feeds into
//!   BALB. Profiles with realistic Jetson Nano / TX2 / Xavier magnitudes
//!   are built in.
//! * [`BatchBuilder`] / [`batches_needed`] — greedy same-size batching and
//!   the camera-latency arithmetic of Definition 1.
//! * [`SimulatedDetector`] — a detection-quality model standing in for the
//!   DNN: per-object miss probability (small objects are harder), bounding
//!   box localization jitter, and false positives.
//! * [`FlowTracker`] + [`FlowField`] — optical-flow tracking-by-detection:
//!   flow-predicted search regions, Hungarian association, track lifecycle.
//! * [`slice_regions`] — tracking-based image slicing with size
//!   quantization (Sec. II-B).
//! * [`find_new_regions`] — moving-pixel clusters that belong to no
//!   existing track, used to catch newly appearing objects mid-horizon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batching;
mod detector;
mod latency;
mod new_region;
mod optical_flow;
mod scalar;
mod slicing;
mod tracker;

pub use batching::{batches_needed, Batch, BatchBuilder, SizeCounts, SizeCountsBatch};
pub use detector::{Detection, DetectionModel, GroundTruthObject, SimulatedDetector};
pub use latency::{DeviceKind, LatencyProfile, SizeProfile};
pub use new_region::{find_new_regions, find_new_regions_into, NewRegionFinder};
pub use optical_flow::{FlowField, FlowSoA, FlowVector};
pub use scalar::ScalarFlowField;
pub use slicing::{
    slice_regions, slice_regions_into, slice_regions_traced, slice_regions_traced_into, RegionTask,
};
pub use tracker::{FlowTracker, Track, TrackId, TrackerConfig};
