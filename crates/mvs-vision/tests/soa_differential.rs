//! Differential proptests: the data-oriented vision kernels bitwise-equal
//! to their retained scalar (AoS) references.
//!
//! [`FlowField`] (the [`FlowSoA`] adapter) must reproduce
//! [`ScalarFlowField`] exactly — same RNG draw order, same clusters, same
//! displacement at every pixel under `f64::to_bits`. Likewise
//! [`NewRegionFinder`] against `find_new_regions_into` and
//! [`SizeCountsBatch`] rows against per-camera [`SizeCounts`]. Scenes are
//! randomized and include empty frames, single-object (single-camera)
//! cases, colliding ids, and degenerate boxes.

use mvs_geometry::{BBox, Point2, SizeClass};
use mvs_vision::{
    find_new_regions_into, DeviceKind, FlowField, GroundTruthObject, LatencyProfile,
    NewRegionFinder, ScalarFlowField, SizeCounts, SizeCountsBatch,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f64..1800.0, 0.0f64..900.0, 0.0f64..180.0, 0.0f64..180.0)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, x + w, y + h).expect("constructed valid"))
}

/// Objects with ids drawn from a small pool, so scenes occasionally contain
/// colliding ids — the last-match-wins rule must agree across layouts.
fn arb_objects() -> impl Strategy<Value = Vec<GroundTruthObject>> {
    prop::collection::vec(
        (0u64..10, arb_bbox()).prop_map(|(id, bbox)| GroundTruthObject { id, bbox }),
        0..12,
    )
}

fn arb_points() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (-50.0f64..2000.0, -50.0f64..1000.0).prop_map(|(x, y)| Point2::new(x, y)),
        0..20,
    )
}

fn arb_sizes() -> impl Strategy<Value = Vec<SizeClass>> {
    prop::collection::vec(
        prop::sample::select(vec![
            SizeClass::S64,
            SizeClass::S128,
            SizeClass::S256,
            SizeClass::S512,
        ]),
        0..30,
    )
}

fn arb_device() -> impl Strategy<Value = DeviceKind> {
    prop::sample::select(vec![DeviceKind::Nano, DeviceKind::Tx2, DeviceKind::Xavier])
}

/// Both layouts estimated from the same scene with identically-seeded RNGs.
fn estimate_pair(
    prev: &[GroundTruthObject],
    curr: &[GroundTruthObject],
    noise_px: f64,
    seed: u64,
) -> (ScalarFlowField, FlowField) {
    let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
    let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
    let scalar = ScalarFlowField::estimate(prev, curr, noise_px, &mut rng_a);
    let soa = FlowField::estimate(prev, curr, noise_px, &mut rng_b);
    // Identical RNG consumption is part of the contract: a layout change
    // that drew differently would silently reshuffle every later draw.
    assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    (scalar, soa)
}

proptest! {
    #[test]
    fn flow_field_matches_scalar_reference_bitwise(
        prev in arb_objects(),
        curr in arb_objects(),
        noise in 0.0f64..4.0,
        seed in proptest::prelude::any::<u64>(),
        probes in arb_points(),
    ) {
        let (scalar, soa) = estimate_pair(&prev, &curr, noise, seed);
        prop_assert_eq!(scalar.moving_clusters(), soa.moving_clusters());
        for p in probes {
            let a = scalar.displacement_at(p).displacement;
            let b = soa.displacement_at(p).displacement;
            prop_assert_eq!(a.x.to_bits(), b.x.to_bits(), "x diverged at {:?}", p);
            prop_assert_eq!(a.y.to_bits(), b.y.to_bits(), "y diverged at {:?}", p);
        }
        // Object centres and corners are the queries track prediction
        // actually issues; cover them besides the uniform probes.
        for o in &prev {
            let a = scalar.displacement_at(o.bbox.center()).displacement;
            let b = soa.displacement_at(o.bbox.center()).displacement;
            prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
            prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
    }

    #[test]
    fn batched_lookup_matches_single_queries_bitwise(
        prev in arb_objects(),
        curr in arb_objects(),
        seed in proptest::prelude::any::<u64>(),
        probes in arb_points(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flow = FlowField::estimate(&prev, &curr, 2.0, &mut rng);
        let (mut best_area, mut best, mut out) = (Vec::new(), Vec::new(), Vec::new());
        flow.soa()
            .displacements_at_into(&probes, &mut best_area, &mut best, &mut out);
        prop_assert_eq!(out.len(), probes.len());
        for (j, p) in probes.iter().enumerate() {
            let single = flow.displacement_at(*p).displacement;
            prop_assert_eq!(out[j].x.to_bits(), single.x.to_bits(), "x diverged at {:?}", p);
            prop_assert_eq!(out[j].y.to_bits(), single.y.to_bits(), "y diverged at {:?}", p);
        }
        // Scratch reuse: a shorter follow-up query through the same
        // buffers must not see stale winners.
        let half = &probes[..probes.len() / 2];
        flow.soa()
            .displacements_at_into(half, &mut best_area, &mut best, &mut out);
        prop_assert_eq!(out.len(), half.len());
        for (j, p) in half.iter().enumerate() {
            let single = flow.displacement_at(*p).displacement;
            prop_assert_eq!(out[j].x.to_bits(), single.x.to_bits());
            prop_assert_eq!(out[j].y.to_bits(), single.y.to_bits());
        }
    }

    #[test]
    fn warm_reestimation_matches_fresh_scalar(
        scene_a in arb_objects(),
        scene_b in arb_objects(),
        scene_c in arb_objects(),
        seed in proptest::prelude::any::<u64>(),
    ) {
        // The steady-state loop re-estimates into warm column buffers;
        // leftover capacity from a bigger earlier frame must not leak into
        // the result.
        let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
        let mut warm = FlowField::empty();
        warm.estimate_into(&scene_a, &scene_b, 1.5, &mut rng_b);
        let _ = ScalarFlowField::estimate(&scene_a, &scene_b, 1.5, &mut rng_a);
        warm.estimate_into(&scene_b, &scene_c, 1.5, &mut rng_b);
        let scalar = ScalarFlowField::estimate(&scene_b, &scene_c, 1.5, &mut rng_a);
        prop_assert_eq!(scalar.moving_clusters(), warm.moving_clusters());
        for o in &scene_b {
            let a = scalar.displacement_at(o.bbox.center()).displacement;
            let b = warm.displacement_at(o.bbox.center()).displacement;
            prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
            prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
    }

    #[test]
    fn region_finder_matches_scalar_path(
        clusters in prop::collection::vec(arb_bbox(), 0..16),
        predicted in prop::collection::vec(arb_bbox(), 0..16),
        threshold in 0.0f64..1.0,
    ) {
        let mut scalar = Vec::new();
        find_new_regions_into(&clusters, &predicted, threshold, &mut scalar);
        let mut finder = NewRegionFinder::new();
        let mut fresh = Vec::new();
        finder.find_into(&clusters, &predicted, threshold, &mut fresh);
        prop_assert_eq!(&fresh, &scalar);
        // Scratch reuse with a different predicted set.
        find_new_regions_into(&clusters, &[], threshold, &mut scalar);
        finder.find_into(&clusters, &[], threshold, &mut fresh);
        prop_assert_eq!(&fresh, &scalar);
    }

    #[test]
    fn size_counts_batch_rows_match_scalar_bitwise(
        rows in prop::collection::vec(arb_sizes(), 0..6),
        device in arb_device(),
    ) {
        let profile = LatencyProfile::for_device(device);
        let mut batch = SizeCountsBatch::new();
        batch.reset(rows.len());
        for (r, sizes) in rows.iter().enumerate() {
            for &s in sizes {
                batch.add(r, s);
            }
        }
        for (r, sizes) in rows.iter().enumerate() {
            let scalar = SizeCounts::from_sizes(sizes.iter().copied());
            prop_assert_eq!(
                batch.latency_row_ms(r, &profile).to_bits(),
                scalar.latency_ms(&profile).to_bits(),
                "row {} latency diverged", r
            );
            prop_assert_eq!(batch.row(r), scalar);
            for s in [SizeClass::S64, SizeClass::S128, SizeClass::S256, SizeClass::S512] {
                prop_assert_eq!(batch.count(r, s), scalar.count(s));
            }
        }
        // Reset must fully clear rows for the next frame.
        batch.reset(rows.len());
        for r in 0..rows.len() {
            prop_assert_eq!(batch.latency_row_ms(r, &profile).to_bits(), 0.0f64.to_bits());
        }
    }
}
