//! Property-based tests for the vision substrate: batching arithmetic,
//! latency-profile consistency, slicing, and tracker lifecycle.

use mvs_geometry::{BBox, FrameDims, SizeClass};
use mvs_vision::{
    batches_needed, find_new_regions, slice_regions, DeviceKind, FlowTracker, LatencyProfile,
    SizeCounts, TrackerConfig,
};
use proptest::prelude::*;

fn arb_device() -> impl Strategy<Value = DeviceKind> {
    prop::sample::select(vec![DeviceKind::Nano, DeviceKind::Tx2, DeviceKind::Xavier])
}

fn arb_sizes() -> impl Strategy<Value = Vec<SizeClass>> {
    prop::collection::vec(
        prop::sample::select(vec![
            SizeClass::S64,
            SizeClass::S128,
            SizeClass::S256,
            SizeClass::S512,
        ]),
        0..40,
    )
}

proptest! {
    #[test]
    fn batches_needed_is_minimal(count in 0usize..200, limit in 1usize..20) {
        let b = batches_needed(count, limit);
        prop_assert!(b * limit >= count, "must fit all crops");
        if b > 0 {
            prop_assert!((b - 1) * limit < count, "must be the minimum batch count");
        } else {
            prop_assert_eq!(count, 0);
        }
    }

    #[test]
    fn latency_is_monotone_in_workload(sizes in arb_sizes(), device in arb_device()) {
        let profile = LatencyProfile::for_device(device);
        let mut counts = SizeCounts::new();
        let mut prev = 0.0;
        for s in sizes {
            counts.add(s);
            let now = counts.latency_ms(&profile);
            prop_assert!(now + 1e-9 >= prev, "latency decreased: {now} < {prev}");
            prev = now;
        }
    }

    #[test]
    fn disabling_batching_never_reduces_latency(sizes in arb_sizes(), device in arb_device()) {
        let batched = LatencyProfile::for_device(device);
        let serial = batched.without_batching();
        let counts = SizeCounts::from_sizes(sizes);
        prop_assert!(counts.latency_ms(&serial) + 1e-9 >= counts.latency_ms(&batched));
    }

    #[test]
    fn open_batch_capacity_is_below_limit(sizes in arb_sizes(), device in arb_device()) {
        let profile = LatencyProfile::for_device(device);
        let counts = SizeCounts::from_sizes(sizes);
        for s in SizeClass::ALL {
            let cap = counts.open_batch_capacity(s, &profile);
            prop_assert!(cap < profile.batch_limit(s));
        }
    }

    #[test]
    fn delta_tracked_latency_matches_from_scratch(
        ops in prop::collection::vec(
            (
                any::<bool>(), // true = add, false = remove
                prop::sample::select(vec![
                    SizeClass::S64,
                    SizeClass::S128,
                    SizeClass::S256,
                    SizeClass::S512,
                ]),
            ),
            0..80,
        ),
        device in arb_device(),
    ) {
        // Running a random add/remove sequence through the O(1) delta API
        // must track the O(|sizes|) from-scratch sum exactly — this is what
        // lets the exact search maintain per-camera latency incrementally.
        let profile = LatencyProfile::for_device(device);
        let mut counts = SizeCounts::new();
        let mut tracked = 0.0f64;
        for (add, size) in ops {
            if add {
                tracked += counts.add_with_delta(size, &profile);
            } else {
                tracked -= counts.remove_with_delta(size, &profile);
            }
            prop_assert!(
                (tracked - counts.latency_ms(&profile)).abs() < 1e-9,
                "tracked {tracked} != recomputed {}",
                counts.latency_ms(&profile)
            );
        }
    }

    #[test]
    fn size_counts_total_matches_additions(sizes in arb_sizes()) {
        let counts = SizeCounts::from_sizes(sizes.clone());
        prop_assert_eq!(counts.total(), sizes.len());
        let per_class: usize = SizeClass::ALL.iter().map(|&s| counts.count(s)).sum();
        prop_assert_eq!(per_class, sizes.len());
    }

    #[test]
    fn sliced_regions_have_the_tracks_quantized_size(
        boxes in prop::collection::vec(
            (0.0f64..1200.0, 0.0f64..600.0, 10.0f64..300.0, 10.0f64..300.0),
            1..10,
        ),
    ) {
        let mut tracker = FlowTracker::new(TrackerConfig::default(), FrameDims::REGULAR);
        for (x, y, w, h) in boxes {
            tracker.seed(
                BBox::new(x, y, (x + w).min(1280.0), (y + h).min(704.0)).expect("valid box"),
                None,
            );
        }
        let tasks = slice_regions(tracker.tracks(), FrameDims::REGULAR);
        prop_assert_eq!(tasks.len(), tracker.tracks().len());
        for (task, track) in tasks.iter().zip(tracker.tracks()) {
            prop_assert_eq!(task.size, track.size);
            prop_assert!(FrameDims::REGULAR.contains(&task.region));
            prop_assert!(task.region.width() <= task.size.side() as f64 + 1e-9);
        }
    }

    #[test]
    fn new_regions_never_overlap_each_other(
        clusters in prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..600.0, 10.0f64..150.0),
            0..12,
        ),
    ) {
        let boxes: Vec<BBox> = clusters
            .iter()
            .map(|&(x, y, s)| BBox::new(x, y, x + s, y + s).expect("valid box"))
            .collect();
        let fresh = find_new_regions(&boxes, &[], 0.5);
        // After merging, the returned regions are pairwise disjoint.
        for i in 0..fresh.len() {
            for j in i + 1..fresh.len() {
                prop_assert_eq!(fresh[i].intersection_area(&fresh[j]), 0.0);
            }
        }
        // And every input cluster is contained in some output region.
        for b in &boxes {
            prop_assert!(fresh.iter().any(|f| f.contains_box(b)));
        }
    }

    #[test]
    fn tracker_misses_accumulate_and_prune(misses in 1u32..6) {
        let config = TrackerConfig {
            max_misses: misses,
            ..Default::default()
        };
        let mut tracker = FlowTracker::new(config, FrameDims::REGULAR);
        tracker.seed(BBox::new(100.0, 100.0, 160.0, 150.0).expect("valid box"), None);
        for _ in 0..misses {
            tracker.associate(&[]);
            prop_assert!(tracker.prune().is_empty());
        }
        tracker.associate(&[]);
        prop_assert_eq!(tracker.prune().len(), 1);
        prop_assert!(tracker.tracks().is_empty());
    }
}
