//! Criterion micro-benchmarks for the scheduling core: BALB central stage
//! throughput versus instance size, the exact solver on small instances,
//! and the assignment latency arithmetic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvs_core::{balb_central, baselines, exact, MvsProblem, ProblemConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_balb_central(c: &mut Criterion) {
    let mut group = c.benchmark_group("balb_central");
    for &(m, n) in &[(3usize, 10usize), (5, 50), (5, 200), (10, 500)] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let problem = MvsProblem::random(&mut rng, m, n, &ProblemConfig::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("M{m}_N{n}")),
            &problem,
            |b, p| b.iter(|| balb_central(black_box(p))),
        );
    }
    group.finish();
}

fn bench_exact_small(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let problem = MvsProblem::random(&mut rng, 3, 8, &ProblemConfig::default());
    c.bench_function("exact_M3_N8", |b| {
        b.iter(|| exact::solve(black_box(&problem), true, 100_000_000).expect("within budget"))
    });
}

fn bench_baselines(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let problem = MvsProblem::random(&mut rng, 5, 100, &ProblemConfig::default());
    c.bench_function("static_partition_N100", |b| {
        b.iter(|| baselines::static_partition_by_id(black_box(&problem)))
    });
    let schedule = balb_central(&problem);
    c.bench_function("system_latency_N100", |b| {
        b.iter(|| {
            schedule
                .assignment
                .system_latency_ms(black_box(&problem), true)
        })
    });
}

criterion_group!(
    benches,
    bench_balb_central,
    bench_exact_small,
    bench_baselines
);
criterion_main!(benches);
