//! Criterion benchmarks for the end-to-end pipeline building blocks:
//! world stepping, camera projection, flow estimation + tracking, and a
//! short full-pipeline run.

use criterion::{criterion_group, criterion_main, Criterion};
use mvs_sim::{run_pipeline, Algorithm, PipelineConfig, Scenario, ScenarioKind};
use mvs_vision::{slice_regions, FlowField, FlowTracker, TrackerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_world_step(c: &mut Criterion) {
    let scenario = Scenario::new(ScenarioKind::S1);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut world = scenario.warmed_world(60.0, &mut rng);
    c.bench_function("world_step_s1", |b| {
        b.iter(|| world.step(black_box(0.1), &mut rng))
    });
}

fn bench_projection(c: &mut Criterion) {
    let scenario = Scenario::new(ScenarioKind::S1);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let world = scenario.warmed_world(60.0, &mut rng);
    let camera = &scenario.cameras[0];
    c.bench_function("visible_objects_s1", |b| {
        b.iter(|| camera.visible_objects(black_box(&world), scenario.occlusion_threshold))
    });
}

fn bench_flow_and_tracking(c: &mut Criterion) {
    let scenario = Scenario::new(ScenarioKind::S1);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut world = scenario.warmed_world(60.0, &mut rng);
    let camera = &scenario.cameras[0];
    let prev = camera.visible_objects(&world, scenario.occlusion_threshold);
    world.step(0.1, &mut rng);
    let curr = camera.visible_objects(&world, scenario.occlusion_threshold);
    c.bench_function("flow_estimate", |b| {
        b.iter(|| FlowField::estimate(black_box(&prev), black_box(&curr), 1.0, &mut rng))
    });
    let flow = FlowField::estimate(&prev, &curr, 1.0, &mut rng);
    let mut tracker = FlowTracker::new(TrackerConfig::default(), camera.frame);
    for g in &prev {
        tracker.seed(g.bbox, Some(g.id));
    }
    c.bench_function("tracker_predict_and_slice", |b| {
        b.iter(|| {
            let mut t = tracker.clone();
            t.predict(black_box(&flow));
            slice_regions(t.tracks(), camera.frame)
        })
    });
}

fn bench_short_pipeline(c: &mut Criterion) {
    // A deliberately short run (cheap scenario, short spans) so the bench
    // finishes in seconds while still covering the full code path.
    let scenario = Scenario::new(ScenarioKind::S2);
    let config = PipelineConfig {
        train_s: 20.0,
        eval_s: 10.0,
        ..PipelineConfig::paper_default(Algorithm::Balb)
    };
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("balb_s2_10s", |b| {
        b.iter(|| run_pipeline(black_box(&scenario), black_box(&config)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_world_step,
    bench_projection,
    bench_flow_and_tracking,
    bench_short_pipeline
);
criterion_main!(benches);
