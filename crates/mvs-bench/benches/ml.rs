//! Criterion micro-benchmarks for the ML toolbox: Hungarian matching at
//! tracker-realistic sizes, KNN queries at association-realistic training
//! sizes, and homography estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvs_geometry::Point2;
use mvs_ml::{estimate_homography, hungarian, Classifier, KnnClassifier, KnnRegressor, Regressor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for &n in &[5usize, 20, 50] {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| hungarian(black_box(cost)).expect("finite costs"))
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let n_train = 5_000;
    let xs: Vec<Vec<f64>> = (0..n_train)
        .map(|_| (0..4).map(|_| rng.gen_range(0.0..1280.0)).collect())
        .collect();
    let labels: Vec<usize> = (0..n_train).map(|i| i % 2).collect();
    let targets: Vec<Vec<f64>> = xs.to_vec();
    let classifier = KnnClassifier::fit(3, &xs, &labels).expect("valid data");
    let regressor = KnnRegressor::fit(3, &xs, &targets).expect("valid data");
    let query = [640.0, 350.0, 720.0, 410.0];
    c.bench_function("knn_classify_5k", |b| {
        b.iter(|| classifier.predict(black_box(&query)))
    });
    c.bench_function("knn_regress_5k", |b| {
        b.iter(|| regressor.predict(black_box(&query)))
    });
}

fn bench_homography(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let src: Vec<Point2> = (0..100)
        .map(|_| Point2::new(rng.gen_range(0.0..1280.0), rng.gen_range(0.0..704.0)))
        .collect();
    let dst: Vec<Point2> = src
        .iter()
        .map(|p| Point2::new(p.x * 1.02 + 30.0, p.y * 0.98 - 10.0))
        .collect();
    c.bench_function("homography_100pts", |b| {
        b.iter(|| estimate_homography(black_box(&src), black_box(&dst)).expect("well-posed"))
    });
}

criterion_group!(benches, bench_hungarian, bench_knn, bench_homography);
criterion_main!(benches);
