//! Fig. 10 — cross-camera *classification module* comparison.
//!
//! For every scenario: collect correspondence labels, split half/half in
//! time (the paper's protocol), train KNN / SVM / logistic / decision-tree
//! classifiers on "is this object visible in the other camera?", and
//! report precision and recall pooled over all ordered camera pairs.
//!
//! Run with `cargo run --release -p mvs-bench --bin fig10_classification`.

use mvs_bench::{classification_dataset, write_json, SCENARIOS, SEED, TRAIN_S};
use mvs_metrics::TextTable;
use mvs_ml::{
    train_test_split, BinaryConfusion, Classifier, DecisionTree, DecisionTreeConfig, KnnClassifier,
    LinearSvm, LogisticRegression,
};
use mvs_sim::{CorrespondenceData, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    model: String,
    precision: f64,
    recall: f64,
}

fn main() {
    let mut rows = Vec::new();
    let mut table = TextTable::new(vec!["scenario", "model", "precision", "recall"]);
    for kind in SCENARIOS {
        let scenario = Scenario::new(kind);
        let mut rng = ChaCha8Rng::seed_from_u64(SEED);
        // Collect labels over the combined train+test span, then split in
        // time: first half trains, second half tests.
        let data = CorrespondenceData::collect(&scenario, 2.0 * TRAIN_S, 2, &mut rng);
        let mut confusion: Vec<(&'static str, BinaryConfusion)> = vec![
            ("KNN", BinaryConfusion::default()),
            ("SVM", BinaryConfusion::default()),
            ("Logistic", BinaryConfusion::default()),
            ("DecisionTree", BinaryConfusion::default()),
        ];
        for samples in data.pairs.values() {
            let (xs, ys) = classification_dataset(samples);
            let Ok((xtr, ytr, xte, yte)) = train_test_split(&xs, &ys, 0.5) else {
                continue;
            };
            // Degenerate pairs (all one class) teach nothing about the
            // comparison; every model would be trivially perfect.
            if xtr.len() < 10 || xte.is_empty() {
                continue;
            }
            let models: Vec<Box<dyn Classifier>> = vec![
                Box::new(KnnClassifier::fit(3, &xtr, &ytr).expect("valid training data")),
                Box::new(LinearSvm::fit(&xtr, &ytr).expect("valid training data")),
                Box::new(LogisticRegression::fit(&xtr, &ytr).expect("valid training data")),
                Box::new(
                    DecisionTree::fit(DecisionTreeConfig::default(), &xtr, &ytr)
                        .expect("valid training data"),
                ),
            ];
            for (model, (_, acc)) in models.iter().zip(confusion.iter_mut()) {
                let pred = model.predict_batch(&xte);
                let c = BinaryConfusion::from_predictions(&pred, &yte);
                acc.tp += c.tp;
                acc.fp += c.fp;
                acc.tn += c.tn;
                acc.fn_ += c.fn_;
            }
        }
        for (name, c) in confusion {
            table.row(vec![
                kind.to_string(),
                name.to_string(),
                format!("{:.3}", c.precision()),
                format!("{:.3}", c.recall()),
            ]);
            rows.push(Row {
                scenario: kind.to_string(),
                model: name.to_string(),
                precision: c.precision(),
                recall: c.recall(),
            });
        }
    }
    println!("Fig. 10 — visibility classification, precision/recall by model\n");
    println!("{table}");
    println!("Paper shape: KNN best precision in S1/S3; logistic competitive in S2.");
    let path = write_json("fig10_classification", &rows);
    println!("\nwrote {}", path.display());
}
