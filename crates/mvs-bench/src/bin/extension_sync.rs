//! Extension experiment (paper Sec. V, "Imperfect synchronization"):
//! *"while some cameras are processing the 'current' scene, others might
//! still be working on older versions … both cameras might lose the
//! current position of the object for some interval of time."*
//!
//! Lags one camera of S2 by 0–10 frames and measures the recall loss for
//! BALB (whose takeover/handoff logic assumes synchronized views) versus
//! BALB-Ind (no cross-camera coordination to confuse).
//!
//! Run with `cargo run --release -p mvs-bench --bin extension_sync`.

use mvs_bench::{experiment_config, parallel_map, write_json};
use mvs_metrics::TextTable;
use mvs_sim::{run_pipeline, Algorithm, Scenario, ScenarioKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    lag_frames: usize,
    balb_recall: f64,
    balb_ind_recall: f64,
}

fn main() {
    let scenario = Scenario::new(ScenarioKind::S2);
    let mut rows = Vec::new();
    let mut table = TextTable::new(vec!["lag (frames)", "BALB recall", "BALB-Ind recall"]);
    let lags = [0usize, 2, 5, 10];
    let jobs: Vec<_> = lags
        .iter()
        .flat_map(|&lag| [(lag, Algorithm::Balb), (lag, Algorithm::BalbInd)])
        .collect();
    let recalls = parallel_map(jobs, |&(lag, algorithm)| {
        let mut config = experiment_config(algorithm);
        config.camera_lag_frames = vec![0, lag];
        run_pipeline(&scenario, &config).recall
    });
    for (&lag, pair) in lags.iter().zip(recalls.chunks(2)) {
        let (balb_recall, balb_ind_recall) = (pair[0], pair[1]);
        table.row(vec![
            lag.to_string(),
            format!("{balb_recall:.3}"),
            format!("{balb_ind_recall:.3}"),
        ]);
        rows.push(Row {
            lag_frames: lag,
            balb_recall,
            balb_ind_recall,
        });
    }
    println!("Extension — imperfect synchronization (S2, camera 1 lagged)\n");
    println!("{table}");
    println!("Lag makes the lagged camera answer for a stale scene: objects that just");
    println!("entered are invisible to it, and handoffs of departing objects happen");
    println!("against outdated positions — the anomaly class the paper describes.");
    let path = write_json("extension_sync", &rows);
    println!("\nwrote {}", path.display());
}
