//! Fig. 14 — impact of the scheduling-horizon length `T` on object recall
//! and per-frame inference latency (BALB, all scenarios).
//!
//! Run with `cargo run --release -p mvs-bench --bin fig14_horizon`.

use mvs_bench::{experiment_config, parallel_map, write_json, SCENARIOS};
use mvs_metrics::TextTable;
use mvs_sim::{run_pipeline, Algorithm, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    horizon: usize,
    recall: f64,
    mean_latency_ms: f64,
}

fn main() {
    let horizons = [2usize, 5, 10, 20, 30];
    let mut rows = Vec::new();
    let mut table = TextTable::new(vec!["scenario", "T", "recall", "latency (ms)"]);
    // The (scenario × horizon) grid is embarrassingly parallel.
    let jobs: Vec<_> = SCENARIOS
        .iter()
        .flat_map(|&kind| horizons.iter().map(move |&horizon| (kind, horizon)))
        .collect();
    let results = parallel_map(jobs.clone(), |&(kind, horizon)| {
        let mut config = experiment_config(Algorithm::Balb);
        config.horizon = horizon;
        run_pipeline(&Scenario::new(kind), &config)
    });
    for ((kind, horizon), result) in jobs.into_iter().zip(results) {
        table.row(vec![
            kind.to_string(),
            horizon.to_string(),
            format!("{:.3}", result.recall),
            format!("{:.1}", result.mean_latency_ms),
        ]);
        rows.push(Row {
            scenario: kind.to_string(),
            horizon,
            recall: result.recall,
            mean_latency_ms: result.mean_latency_ms,
        });
    }
    println!("Fig. 14 — scheduling-horizon sweep (BALB)\n");
    println!("{table}");
    println!("Paper shape: longer horizons amortize full-frame inspections (latency ↓)");
    println!("but degrade recall; T = 10 is the chosen quality/efficiency trade-off.");
    let path = write_json("fig14_horizon", &rows);
    println!("\nwrote {}", path.display());
}
