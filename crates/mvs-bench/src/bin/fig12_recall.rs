//! Fig. 12 — object recall for Full / BALB-Ind / BALB-Cen / BALB / SP,
//! replicated over three seeds (mean ± std).
//!
//! Run with `cargo run --release -p mvs-bench --bin fig12_recall`.

use mvs_bench::{experiment_config, parallel_map, write_json, REPLICATIONS, SCENARIOS, SEED};
use mvs_metrics::{Running, TextTable};
use mvs_sim::{run_pipeline, Algorithm, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    algorithm: String,
    recall: f64,
    recall_std: f64,
}

fn main() {
    let algorithms = [
        Algorithm::Full,
        Algorithm::BalbInd,
        Algorithm::BalbCen,
        Algorithm::Balb,
        Algorithm::StaticPartition,
    ];
    let mut rows = Vec::new();
    let mut table = TextTable::new(vec!["scenario", "algorithm", "object recall"]);
    // Independent (scenario × algorithm × seed) runs — sweep in parallel,
    // aggregate serially in sweep order.
    let jobs: Vec<_> = SCENARIOS
        .iter()
        .flat_map(|&kind| {
            algorithms.iter().flat_map(move |&algorithm| {
                (0..REPLICATIONS).map(move |rep| (kind, algorithm, rep))
            })
        })
        .collect();
    let recalls = parallel_map(jobs, |&(kind, algorithm, rep)| {
        let mut config = experiment_config(algorithm);
        config.seed = SEED + rep as u64;
        run_pipeline(&Scenario::new(kind), &config).recall
    });
    let mut recalls = recalls.into_iter();
    for kind in SCENARIOS {
        for algorithm in algorithms {
            let mut recall = Running::new();
            for _ in 0..REPLICATIONS {
                recall.push(recalls.next().expect("one recall per job"));
            }
            table.row(vec![
                kind.to_string(),
                algorithm.to_string(),
                recall.format(3),
            ]);
            rows.push(Row {
                scenario: kind.to_string(),
                algorithm: algorithm.to_string(),
                recall: recall.mean(),
                recall_std: recall.sample_std(),
            });
        }
    }
    println!("Fig. 12 — object recall by scheduling algorithm ({REPLICATIONS} seeds)\n");
    println!("{table}");
    println!("Paper shape: Full ≈ BALB-Ind ≥ BALB > BALB-Cen ≥ SP; the BALB-Cen gap");
    println!("widens in the busy scenario (S3), which is where the distributed stage helps.");
    let path = write_json("fig12_recall", &rows);
    println!("\nwrote {}", path.display());
}
