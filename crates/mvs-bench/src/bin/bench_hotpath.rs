//! Perf-trajectory artifact: steady-state frame-loop time and
//! allocations-per-frame, cold vs. warm, written to
//! `results/BENCH_hotpath.json`.
//!
//! The kernel is the per-frame steady-state work of an S2-style two-camera
//! deployment (Xavier + Nano): the four per-camera vision stages (optical
//! flow, slicing, predicted-box collection, new-region detection) followed
//! by rescheduling against a frame-over-frame [`ProblemDelta`]. Two arms
//! run the identical frame sequence with identical RNG streams:
//!
//! * **cold** — the pre-warm-start path: allocating vision calls
//!   ([`FlowField::estimate`], [`slice_regions`], a fresh predicted `Vec`,
//!   [`find_new_regions`]) and a full rebuild-and-resolve of the scheduling
//!   instance ([`MvsProblem::new`] over cloned cameras/objects +
//!   [`balb_central`]) every frame.
//! * **warm** — the steady-state path this repo ships: `_into` vision
//!   variants over per-camera scratch buffers and
//!   [`BalbSolver::apply_delta`] repairing the previous schedule in place.
//!
//! A second pair of arms isolates the data-oriented kernel rewrite: the
//! same per-frame kernel battery — a displacement lookup per track,
//! cluster×predicted pairwise IoU, new-region detection, and the
//! per-camera batched latency model — runs once through the retained
//! scalar references ([`ScalarFlowField`], [`find_new_regions_into`],
//! [`SizeCounts`]) and once through the SoA kernels the hot path ships
//! ([`FlowField`]/`FlowSoA`, [`BBoxSoA::iou_matrix_into`],
//! [`NewRegionFinder`], [`SizeCountsBatch`]). Both arms query flow fields
//! prebuilt outside the clock: field *construction* is RNG-bound detector
//! simulation whose cost is identical in either layout (the gaussian draw
//! order is pinned by the determinism contract), so timing it would only
//! dilute the layout comparison toward 1x. The reported `soa_speedup` is
//! the scalar/SoA frame-time ratio over the kernel battery.
//!
//! A third pair of arms isolates dispatch overhead (ISSUE 10): the same
//! tiny per-camera payload fanned out per frame via a fresh
//! `std::thread::scope` spawn per camera (the style the hot path used to
//! ship — retained only here, as the reference arm) and via the
//! persistent pool ([`mvs_exec::pool`]). The reported
//! `pool_dispatch_speedup` is the scoped/pool frame-time ratio; `--check`
//! holds it above an absolute 1.2x floor plus the usual baseline band.
//!
//! A verification pass runs first and asserts the arms produce
//! bitwise-identical schedules and identical vision outputs on every frame
//! (kernel arms: identical clusters, displacement bits, IoU matrices,
//! fresh regions, and latency bits); only then are the arms timed. With
//! `--features bench-alloc` the bin installs a counting global allocator
//! and also reports allocations-per-frame for the cold/warm arms (without
//! the feature the alloc fields are `null`).
//!
//! `--check <baseline.json>` re-reads a checked-in baseline report and
//! exits nonzero if the steady-state win regressed: the cold/warm speedup
//! ratio fell more than 15% below the baseline's, the SoA kernel speedup
//! fell below its absolute 1.3x floor (or more than 15% below the
//! baseline's), or (when both reports carry alloc counts) warm
//! allocations-per-frame grew more than 15%. Comparing ratios rather than
//! absolute times keeps the check portable across CI machines.
//!
//! Run with
//! `cargo run --release -p mvs-bench --features bench-alloc --bin bench_hotpath`.

use mvs_bench::{write_json, SEED};
use mvs_core::{
    balb_central, BalbSolver, CameraId, CameraInfo, MvsProblem, ObjectId, ProblemDelta,
};
use mvs_geometry::{BBox, BBoxSoA, FrameDims, Point2, SizeClass};
use mvs_metrics::TextTable;
use mvs_vision::{
    find_new_regions, find_new_regions_into, slice_regions, slice_regions_into, DeviceKind,
    FlowField, GroundTruthObject, LatencyProfile, NewRegionFinder, RegionTask, ScalarFlowField,
    SizeCounts, SizeCountsBatch, Track, TrackId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

#[cfg(feature = "bench-alloc")]
mod counting_alloc {
    //! A pass-through global allocator that counts allocation events.
    //! Lives in the bench bin only — the library crates stay
    //! `forbid(unsafe_code)`-clean.
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: defers every operation to `System`; the counter is a relaxed
    // atomic with no effect on the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }
}

#[cfg(feature = "bench-alloc")]
#[global_allocator]
static GLOBAL: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

/// Current allocation-event count, when the counting allocator is in.
fn alloc_events() -> Option<u64> {
    #[cfg(feature = "bench-alloc")]
    {
        Some(counting_alloc::ALLOCS.load(std::sync::atomic::Ordering::Relaxed))
    }
    #[cfg(not(feature = "bench-alloc"))]
    {
        None
    }
}

/// Cameras in the deployment (S2: one Xavier, one Nano).
const M: usize = 2;
/// Stable coverage-1 objects occupying the scheduling-order prefix.
const BASE_OBJECTS: usize = 40;
/// Full-coverage churn objects at the order tail (enter/move/leave).
const CHURN_OBJECTS: usize = 8;
/// Ground-truth objects each camera sees (vision-stage workload; dense
/// enough that the pairwise kernels dominate the vision stages).
const VIEW_OBJECTS: usize = 64;
/// Frames run before the timer starts (fills scratch high-water marks).
const WARMUP_FRAMES: usize = 200;
/// Frames in the measured steady-state window.
const MEASURED_FRAMES: usize = 2000;
/// Timed repetitions per arm; the reported time is the minimum (the
/// standard noise-robust estimator — scheduler interference only ever
/// adds time). Arms are interleaved so drift hits both equally.
const REPS: usize = 5;
/// Optical-flow estimation noise (matches the pipeline's default scale).
const NOISE_PX: f64 = 1.5;

/// Pre-generated deterministic workload shared by both arms.
struct Workload {
    /// `[frame][camera]` ground-truth views (frame 0's previous view is
    /// empty, as at a horizon start).
    views: Vec<Vec<Vec<GroundTruthObject>>>,
    /// `[frame][camera]` current track lists (slicing input).
    tracks: Vec<Vec<Vec<Track>>>,
    /// Per-frame scheduling edit scripts (tail churn only).
    deltas: Vec<ProblemDelta>,
    /// The frame-0 scheduling instance.
    initial: MvsProblem,
    frame: FrameDims,
}

impl Workload {
    fn generate(frames: usize) -> Workload {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED);
        let frame = FrameDims::REGULAR;

        // Scheduling instance: coverage-1 base objects (they sort first,
        // so the order prefix survives tail churn) plus full-coverage
        // churn objects (they sort last).
        let cameras = vec![
            CameraInfo {
                id: CameraId(0),
                profile: LatencyProfile::for_device(DeviceKind::Xavier),
            },
            CameraInfo {
                id: CameraId(1),
                profile: LatencyProfile::for_device(DeviceKind::Nano),
            },
        ];
        let base_sizes = [SizeClass::S128, SizeClass::S256, SizeClass::S512];
        let churn_map = |rng: &mut ChaCha8Rng| {
            let tail = if rng.gen_bool(0.5) {
                SizeClass::S64
            } else {
                SizeClass::S128
            };
            [(CameraId(0), SizeClass::S64), (CameraId(1), tail)]
                .into_iter()
                .collect()
        };
        let mut objects = Vec::new();
        for j in 0..BASE_OBJECTS {
            let cam = CameraId(j % M);
            let size = base_sizes[rng.gen_range(0..base_sizes.len())];
            objects.push([(cam, size)].into_iter().collect());
        }
        for _ in 0..CHURN_OBJECTS {
            objects.push(churn_map(&mut rng));
        }
        let initial = MvsProblem::new(
            cameras,
            objects
                .into_iter()
                .enumerate()
                .map(|(j, sizes)| mvs_core::ObjectInfo {
                    id: ObjectId(j),
                    sizes,
                })
                .collect(),
        )
        .expect("synthetic instance is valid");

        // Per-frame deltas: one churn object leaves, one enters, one moves
        // to a fresh size map — all at the order tail, so the warm solver
        // replays the whole base prefix every frame.
        let mut mirror = initial.clone();
        let mut deltas = Vec::with_capacity(frames);
        for _ in 0..frames {
            let slots: Vec<usize> = (BASE_OBJECTS..mirror.num_objects()).collect();
            let leave = slots[rng.gen_range(0..slots.len())];
            let moved = loop {
                let s = slots[rng.gen_range(0..slots.len())];
                if s != leave {
                    break s;
                }
            };
            let delta = ProblemDelta {
                left: vec![ObjectId(leave)],
                moved: vec![(ObjectId(moved), churn_map(&mut rng))],
                entered: vec![churn_map(&mut rng)],
            };
            delta.apply(&mut mirror).expect("generated delta is valid");
            deltas.push(delta);
        }

        // Vision workload: per camera, a fixed population of objects
        // drifting horizontally with wraparound. Tracks mirror the views
        // one frame behind (as the tracker would predict them).
        let mut views = Vec::with_capacity(frames);
        let mut tracks = Vec::with_capacity(frames);
        // `(id, x0, y0, side, vx)` per object.
        type ObjectSpec = (u64, f64, f64, f64, f64);
        let spec: Vec<Vec<ObjectSpec>> = (0..M)
            .map(|cam| {
                (0..VIEW_OBJECTS)
                    .map(|k| {
                        let id = (cam * 1000 + k) as u64;
                        let x0 = rng.gen_range(0.0..frame.width as f64 - 140.0);
                        let y0 = rng.gen_range(0.0..frame.height as f64 - 140.0);
                        let side = rng.gen_range(40.0..130.0);
                        let vx = rng.gen_range(-4.0..4.0);
                        (id, x0, y0, side, vx)
                    })
                    .collect()
            })
            .collect();
        let view_at = |cam: usize, f: usize| -> Vec<GroundTruthObject> {
            spec[cam]
                .iter()
                .map(|&(id, x0, y0, side, vx)| {
                    let span = frame.width as f64 - side;
                    let x = (x0 + vx * f as f64).rem_euclid(span);
                    GroundTruthObject {
                        id,
                        bbox: BBox::new(x, y0, x + side, y0 + side)
                            .expect("positive extent by construction"),
                    }
                })
                .collect()
        };
        for f in 0..frames {
            views.push((0..M).map(|cam| view_at(cam, f)).collect::<Vec<_>>());
            tracks.push(
                (0..M)
                    .map(|cam| {
                        view_at(cam, f.saturating_sub(1))
                            .into_iter()
                            .map(|o| Track {
                                id: TrackId(o.id),
                                bbox: o.bbox,
                                size: SizeClass::quantize(o.bbox.width(), o.bbox.height()),
                                age: 1,
                                misses: 0,
                                last_truth: Some(o.id),
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>(),
            );
        }

        Workload {
            views,
            tracks,
            deltas,
            initial,
            frame,
        }
    }

    fn prev_view(&self, f: usize, cam: usize) -> &[GroundTruthObject] {
        if f == 0 {
            &[]
        } else {
            &self.views[f - 1][cam]
        }
    }
}

/// Folds a schedule and the vision outputs into a checksum: keeps the
/// optimizer from discarding the work and lets the timed arms cross-check
/// without storing per-frame outputs.
fn fold(
    acc: &mut u64,
    latencies: &[f64],
    priority: &[CameraId],
    tasks_len: usize,
    fresh_len: usize,
) {
    for &l in latencies {
        *acc = acc.rotate_left(7) ^ l.to_bits();
    }
    for &c in priority {
        *acc = acc.rotate_left(3) ^ c.0 as u64;
    }
    *acc = acc.rotate_left(5) ^ (tasks_len as u64) ^ ((fresh_len as u64) << 32);
}

/// Per-camera scratch for the warm arm (the bin-local analogue of the
/// pipeline's `FrameScratch`).
#[derive(Default)]
struct Scratch {
    flow: FlowField,
    tasks: Vec<RegionTask>,
    predicted: Vec<BBox>,
    fresh: Vec<BBox>,
}

/// One cold frame: allocating vision calls + rebuild-and-resolve.
fn cold_frame(
    w: &Workload,
    f: usize,
    rng: &mut ChaCha8Rng,
    mirror: &mut MvsProblem,
    acc: &mut u64,
) {
    let mut vision: u64 = 0;
    for cam in 0..M {
        let flow = FlowField::estimate(w.prev_view(f, cam), &w.views[f][cam], NOISE_PX, rng);
        let tasks = slice_regions(&w.tracks[f][cam], w.frame);
        let predicted: Vec<BBox> = w.tracks[f][cam].iter().map(|t| t.bbox).collect();
        let fresh = find_new_regions(flow.moving_clusters(), &predicted, 0.5);
        vision ^= ((tasks.len() as u64) << (cam * 16)) ^ ((fresh.len() as u64) << (cam * 16 + 8));
    }
    w.deltas[f].apply(mirror).expect("delta is valid");
    let problem = MvsProblem::new(mirror.cameras().to_vec(), mirror.objects().to_vec())
        .expect("mirror instance stays valid");
    let schedule = balb_central(&problem);
    fold(
        acc,
        &schedule.camera_latencies_ms,
        &schedule.priority,
        (vision & 0xffff) as usize,
        ((vision >> 8) & 0xffff) as usize,
    );
}

/// One warm frame: `_into` vision over scratch + in-place schedule repair.
fn warm_frame(
    w: &Workload,
    f: usize,
    rng: &mut ChaCha8Rng,
    solver: &mut BalbSolver,
    scratch: &mut [Scratch],
    acc: &mut u64,
) {
    let mut vision: u64 = 0;
    for (cam, s) in scratch.iter_mut().enumerate() {
        s.flow
            .estimate_into(w.prev_view(f, cam), &w.views[f][cam], NOISE_PX, rng);
        slice_regions_into(&w.tracks[f][cam], w.frame, &mut s.tasks);
        s.predicted.clear();
        s.predicted.extend(w.tracks[f][cam].iter().map(|t| t.bbox));
        find_new_regions_into(s.flow.moving_clusters(), &s.predicted, 0.5, &mut s.fresh);
        vision ^=
            ((s.tasks.len() as u64) << (cam * 16)) ^ ((s.fresh.len() as u64) << (cam * 16 + 8));
    }
    let schedule = solver.apply_delta(&w.deltas[f]).expect("delta is valid");
    fold(
        acc,
        &schedule.camera_latencies_ms,
        &schedule.priority,
        (vision & 0xffff) as usize,
        ((vision >> 8) & 0xffff) as usize,
    );
}

/// Runs both arms frame-by-frame and asserts bitwise-identical outputs
/// (schedule latencies via `f64::to_bits`, assignments, priorities, task
/// and fresh-region lists) before any timing happens.
fn verify(w: &Workload, frames: usize) {
    let mut cold_rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x5eed);
    let mut warm_rng = cold_rng.clone();
    let mut mirror = w.initial.clone();
    let mut solver = BalbSolver::new();
    solver.solve(&w.initial);
    let cold0 = balb_central(&w.initial);
    assert_eq!(cold0, *solver.schedule(), "initial solves disagree");

    let mut scratch: Vec<Scratch> = (0..M).map(|_| Scratch::default()).collect();
    for f in 0..frames {
        // Vision stages, both ways.
        for (cam, s) in scratch.iter_mut().enumerate() {
            let flow = FlowField::estimate(
                w.prev_view(f, cam),
                &w.views[f][cam],
                NOISE_PX,
                &mut cold_rng,
            );
            s.flow.estimate_into(
                w.prev_view(f, cam),
                &w.views[f][cam],
                NOISE_PX,
                &mut warm_rng,
            );
            let tasks = slice_regions(&w.tracks[f][cam], w.frame);
            slice_regions_into(&w.tracks[f][cam], w.frame, &mut s.tasks);
            assert_eq!(tasks, s.tasks, "frame {f} cam {cam}: tasks diverge");
            let predicted: Vec<BBox> = w.tracks[f][cam].iter().map(|t| t.bbox).collect();
            s.predicted.clear();
            s.predicted.extend(w.tracks[f][cam].iter().map(|t| t.bbox));
            let fresh = find_new_regions(flow.moving_clusters(), &predicted, 0.5);
            find_new_regions_into(s.flow.moving_clusters(), &s.predicted, 0.5, &mut s.fresh);
            assert_eq!(fresh, s.fresh, "frame {f} cam {cam}: fresh regions diverge");
        }
        // Scheduling, both ways.
        w.deltas[f].apply(&mut mirror).expect("delta is valid");
        let problem = MvsProblem::new(mirror.cameras().to_vec(), mirror.objects().to_vec())
            .expect("mirror instance stays valid");
        let cold = balb_central(&problem);
        let warm = solver.apply_delta(&w.deltas[f]).expect("delta is valid");
        assert_eq!(cold.assignment, warm.assignment, "frame {f}: assignment");
        assert_eq!(cold.priority, warm.priority, "frame {f}: priority");
        let cold_bits: Vec<u64> = cold
            .camera_latencies_ms
            .iter()
            .map(|l| l.to_bits())
            .collect();
        let warm_bits: Vec<u64> = warm
            .camera_latencies_ms
            .iter()
            .map(|l| l.to_bits())
            .collect();
        assert_eq!(cold_bits, warm_bits, "frame {f}: latency bits");
    }
    assert!(
        solver.stats().warm_solves > 0,
        "workload never exercised the warm path"
    );
}

/// Timed + alloc-counted run of one arm over the measured window.
struct ArmResult {
    ms_per_frame: f64,
    allocs_per_frame: Option<f64>,
    checksum: u64,
}

fn run_cold(w: &Workload) -> ArmResult {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x5eed);
    let mut mirror = w.initial.clone();
    let mut acc: u64 = 0;
    for f in 0..WARMUP_FRAMES {
        cold_frame(w, f, &mut rng, &mut mirror, &mut acc);
    }
    acc = 0;
    let allocs_before = alloc_events();
    let start = Instant::now();
    for f in WARMUP_FRAMES..WARMUP_FRAMES + MEASURED_FRAMES {
        cold_frame(w, f, &mut rng, &mut mirror, &mut acc);
    }
    let elapsed = start.elapsed();
    let allocs = alloc_events().zip(allocs_before).map(|(a, b)| a - b);
    ArmResult {
        ms_per_frame: elapsed.as_secs_f64() * 1e3 / MEASURED_FRAMES as f64,
        allocs_per_frame: allocs.map(|a| a as f64 / MEASURED_FRAMES as f64),
        checksum: acc,
    }
}

fn run_warm(w: &Workload) -> ArmResult {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ 0x5eed);
    let mut solver = BalbSolver::new();
    solver.solve(&w.initial);
    let mut scratch: Vec<Scratch> = (0..M).map(|_| Scratch::default()).collect();
    let mut acc: u64 = 0;
    for f in 0..WARMUP_FRAMES {
        warm_frame(w, f, &mut rng, &mut solver, &mut scratch, &mut acc);
    }
    acc = 0;
    let allocs_before = alloc_events();
    let start = Instant::now();
    for f in WARMUP_FRAMES..WARMUP_FRAMES + MEASURED_FRAMES {
        warm_frame(w, f, &mut rng, &mut solver, &mut scratch, &mut acc);
    }
    let elapsed = start.elapsed();
    let allocs = alloc_events().zip(allocs_before).map(|(a, b)| a - b);
    ArmResult {
        ms_per_frame: elapsed.as_secs_f64() * 1e3 / MEASURED_FRAMES as f64,
        allocs_per_frame: allocs.map(|a| a as f64 / MEASURED_FRAMES as f64),
        checksum: acc,
    }
}

/// RNG seed for the kernel-arm flow fields (distinct from the cold/warm
/// arms so the two batteries cannot mask each other's divergences).
const KERNEL_SEED: u64 = SEED ^ 0x50a;

/// Flow fields prebuilt for the kernel arms, `[frame][camera]`, in both
/// layouts. Construction consumes the RNG identically for both (asserted
/// at build time), so the timed arms are pure layout comparisons.
struct KernelFields {
    scalar: Vec<Vec<ScalarFlowField>>,
    soa: Vec<Vec<FlowField>>,
}

impl KernelFields {
    fn build(w: &Workload, frames: usize) -> KernelFields {
        let mut scalar_rng = ChaCha8Rng::seed_from_u64(KERNEL_SEED);
        let mut soa_rng = scalar_rng.clone();
        let mut scalar = Vec::with_capacity(frames);
        let mut soa = Vec::with_capacity(frames);
        for f in 0..frames {
            scalar.push(
                (0..M)
                    .map(|cam| {
                        ScalarFlowField::estimate(
                            w.prev_view(f, cam),
                            &w.views[f][cam],
                            NOISE_PX,
                            &mut scalar_rng,
                        )
                    })
                    .collect::<Vec<_>>(),
            );
            soa.push(
                (0..M)
                    .map(|cam| {
                        FlowField::estimate(
                            w.prev_view(f, cam),
                            &w.views[f][cam],
                            NOISE_PX,
                            &mut soa_rng,
                        )
                    })
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(
            scalar_rng.gen::<u64>(),
            soa_rng.gen::<u64>(),
            "field construction consumed the RNG differently"
        );
        KernelFields { scalar, soa }
    }
}

/// Scratch for the scalar (AoS) kernel arm: the retained reference
/// implementations with reusable buffers.
#[derive(Default)]
struct ScalarKernelScratch {
    predicted: Vec<BBox>,
    iou: Vec<f64>,
    fresh: Vec<BBox>,
    counts: SizeCounts,
}

/// Scratch for the SoA kernel arm: the column-major kernels the hot path
/// ships.
#[derive(Default)]
struct SoaKernelScratch {
    predicted: Vec<BBox>,
    centers: Vec<Point2>,
    best_area: Vec<f64>,
    best: Vec<u32>,
    displacements: Vec<Point2>,
    cluster_cols: BBoxSoA,
    predicted_cols: BBoxSoA,
    iou: Vec<f64>,
    finder: NewRegionFinder,
    fresh: Vec<BBox>,
    batch: SizeCountsBatch,
}

/// One frame of the scalar kernel battery: a displacement lookup per
/// track, the cluster×predicted IoU matrix via [`BBox::iou`] pairs, AoS
/// new-region detection, and the per-camera [`SizeCounts`] latency model.
/// Every result is folded into `acc` bit by bit so the SoA arm can be
/// checked for bitwise identity.
fn scalar_kernel_frame(
    w: &Workload,
    fields: &KernelFields,
    f: usize,
    profiles: &[LatencyProfile],
    s: &mut ScalarKernelScratch,
    acc: &mut u64,
) {
    // Range loop kept deliberately: the constant `M` trip count is what
    // lets the per-camera body unroll; iterator-chain variants cost ~10%
    // on the timed kernels.
    #[allow(clippy::needless_range_loop)]
    for cam in 0..M {
        let flow = &fields.scalar[f][cam];
        let profile = &profiles[cam];
        for t in &w.tracks[f][cam] {
            let v = flow.displacement_at(t.bbox.center()).displacement;
            *acc = acc.rotate_left(9) ^ v.x.to_bits() ^ v.y.to_bits().rotate_left(17);
        }
        s.predicted.clear();
        s.predicted.extend(w.tracks[f][cam].iter().map(|t| t.bbox));
        s.iou.clear();
        for c in flow.moving_clusters() {
            for p in &s.predicted {
                s.iou.push(c.iou(p));
            }
        }
        // Order-independent xor over the matrix, mixed into the running
        // fold once: a reduction both arms compute identically that stays
        // out of the kernels' way (it vectorizes).
        let mut matrix_bits: u64 = 0;
        for &v in &s.iou {
            matrix_bits ^= v.to_bits();
        }
        *acc = acc.rotate_left(1) ^ matrix_bits;
        find_new_regions_into(flow.moving_clusters(), &s.predicted, 0.5, &mut s.fresh);
        *acc = acc.rotate_left(5) ^ s.fresh.len() as u64;
        s.counts.clear();
        for t in &w.tracks[f][cam] {
            s.counts.add(t.size);
        }
        *acc = acc.rotate_left(11) ^ s.counts.latency_ms(profile).to_bits();
    }
}

/// One frame of the SoA kernel battery: identical inputs, identical fold
/// order, but through `FlowSoA`'s column scan,
/// [`BBoxSoA::iou_matrix_into`], [`NewRegionFinder`], and one
/// [`SizeCountsBatch`] covering every camera.
fn soa_kernel_frame(
    w: &Workload,
    fields: &KernelFields,
    f: usize,
    profiles: &[LatencyProfile],
    s: &mut SoaKernelScratch,
    acc: &mut u64,
) {
    s.batch.reset(M);
    // Same constant-trip-count range loop as the scalar arm (see there).
    #[allow(clippy::needless_range_loop)]
    for cam in 0..M {
        let flow = &fields.soa[f][cam];
        let profile = &profiles[cam];
        // Batched track prediction: one column sweep answers every
        // track's displacement query.
        s.centers.clear();
        s.centers
            .extend(w.tracks[f][cam].iter().map(|t| t.bbox.center()));
        flow.soa().displacements_at_into(
            &s.centers,
            &mut s.best_area,
            &mut s.best,
            &mut s.displacements,
        );
        for v in &s.displacements {
            *acc = acc.rotate_left(9) ^ v.x.to_bits() ^ v.y.to_bits().rotate_left(17);
        }
        s.predicted.clear();
        s.predicted.extend(w.tracks[f][cam].iter().map(|t| t.bbox));
        s.cluster_cols.fill_from_boxes(flow.moving_clusters());
        s.predicted_cols.fill_from_boxes(&s.predicted);
        s.cluster_cols
            .iou_matrix_into(&s.predicted_cols, &mut s.iou);
        let mut matrix_bits: u64 = 0;
        for &v in &s.iou {
            matrix_bits ^= v.to_bits();
        }
        *acc = acc.rotate_left(1) ^ matrix_bits;
        s.finder
            .find_into(flow.moving_clusters(), &s.predicted, 0.5, &mut s.fresh);
        *acc = acc.rotate_left(5) ^ s.fresh.len() as u64;
        for t in &w.tracks[f][cam] {
            s.batch.add(cam, t.size);
        }
        *acc = acc.rotate_left(11) ^ s.batch.latency_row_ms(cam, profile).to_bits();
    }
}

/// Runs both kernel arms frame-by-frame and asserts bitwise-identical
/// outputs before any timing happens. The per-frame structural asserts
/// (clusters, IoU bits, fresh regions) cover the last camera's buffers;
/// the checksum compare covers every camera, displacement, and latency.
fn verify_kernels(w: &Workload, fields: &KernelFields, frames: usize, profiles: &[LatencyProfile]) {
    let mut scalar = ScalarKernelScratch::default();
    let mut soa = SoaKernelScratch::default();
    for f in 0..frames {
        for cam in 0..M {
            assert_eq!(
                fields.scalar[f][cam].moving_clusters(),
                fields.soa[f][cam].moving_clusters(),
                "frame {f} cam {cam}: moving clusters diverge"
            );
        }
        let mut scalar_acc: u64 = 0;
        let mut soa_acc: u64 = 0;
        scalar_kernel_frame(w, fields, f, profiles, &mut scalar, &mut scalar_acc);
        soa_kernel_frame(w, fields, f, profiles, &mut soa, &mut soa_acc);
        let scalar_iou: Vec<u64> = scalar.iou.iter().map(|v| v.to_bits()).collect();
        let soa_iou: Vec<u64> = soa.iou.iter().map(|v| v.to_bits()).collect();
        assert_eq!(scalar_iou, soa_iou, "frame {f}: IoU matrix bits diverge");
        assert_eq!(scalar.fresh, soa.fresh, "frame {f}: fresh regions diverge");
        assert_eq!(
            scalar_acc, soa_acc,
            "frame {f}: kernel checksums (displacement/latency bits) diverge"
        );
    }
}

/// Per-camera payload for the dispatch arms: a small deterministic fold
/// over the camera's tracks — a few microseconds, so the measured time is
/// dominated by how the work *reaches* a thread, not the work itself.
fn dispatch_payload(w: &Workload, f: usize, cam: usize) -> u64 {
    let mut acc: u64 = 0;
    for t in &w.tracks[f][cam] {
        let c = t.bbox.center();
        acc = acc.rotate_left(7) ^ c.x.to_bits() ^ c.y.to_bits().rotate_left(19);
        acc = acc.rotate_left(3) ^ t.bbox.area().to_bits();
    }
    acc
}

/// The dispatch style this repo used to ship: a fresh scoped thread per
/// camera per frame. Retained here as the spawn-overhead reference arm —
/// the library hot paths no longer contain any such spawn.
// The intermediate collect is the point: spawn every thread before
// joining any, as the old scoped call sites did.
#[allow(clippy::needless_collect)]
fn run_dispatch_scoped(w: &Workload) -> ArmResult {
    let mut acc: u64 = 0;
    let frame = |f: usize, acc: &mut u64| {
        let outs: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..M)
                .map(|cam| scope.spawn(move || dispatch_payload(w, f, cam)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("payload thread panicked"))
                .collect()
        });
        for o in outs {
            *acc = acc.rotate_left(13) ^ o;
        }
    };
    for f in 0..WARMUP_FRAMES {
        frame(f, &mut acc);
    }
    acc = 0;
    let start = Instant::now();
    for f in WARMUP_FRAMES..WARMUP_FRAMES + MEASURED_FRAMES {
        frame(f, &mut acc);
    }
    let elapsed = start.elapsed();
    ArmResult {
        ms_per_frame: elapsed.as_secs_f64() * 1e3 / MEASURED_FRAMES as f64,
        allocs_per_frame: None,
        checksum: acc,
    }
}

/// The same per-frame fan-out through the persistent pool
/// ([`mvs_exec::pool`]): workers are parked between frames, so dispatch is
/// a channel send and a latch wait instead of two thread spawns.
fn run_dispatch_pool(w: &Workload) -> ArmResult {
    let cams: Vec<usize> = (0..M).collect();
    let mut acc: u64 = 0;
    let frame = |f: usize, acc: &mut u64| {
        let outs = mvs_exec::pool().par_map(&cams, M, |&cam| dispatch_payload(w, f, cam));
        for o in outs {
            *acc = acc.rotate_left(13) ^ o;
        }
    };
    for f in 0..WARMUP_FRAMES {
        frame(f, &mut acc);
    }
    acc = 0;
    let start = Instant::now();
    for f in WARMUP_FRAMES..WARMUP_FRAMES + MEASURED_FRAMES {
        frame(f, &mut acc);
    }
    let elapsed = start.elapsed();
    ArmResult {
        ms_per_frame: elapsed.as_secs_f64() * 1e3 / MEASURED_FRAMES as f64,
        allocs_per_frame: None,
        checksum: acc,
    }
}

/// Timed run of one kernel arm over the measured window (same
/// warmup/measure/checksum protocol as the cold/warm arms).
fn run_kernel_arm<S: Default>(
    w: &Workload,
    fields: &KernelFields,
    profiles: &[LatencyProfile],
    frame_fn: impl Fn(&Workload, &KernelFields, usize, &[LatencyProfile], &mut S, &mut u64),
) -> ArmResult {
    let mut scratch = S::default();
    let mut acc: u64 = 0;
    for f in 0..WARMUP_FRAMES {
        frame_fn(w, fields, f, profiles, &mut scratch, &mut acc);
    }
    acc = 0;
    let start = Instant::now();
    for f in WARMUP_FRAMES..WARMUP_FRAMES + MEASURED_FRAMES {
        frame_fn(w, fields, f, profiles, &mut scratch, &mut acc);
    }
    let elapsed = start.elapsed();
    ArmResult {
        ms_per_frame: elapsed.as_secs_f64() * 1e3 / MEASURED_FRAMES as f64,
        allocs_per_frame: None,
        checksum: acc,
    }
}

#[derive(Serialize, Deserialize)]
struct Report {
    cameras: usize,
    base_objects: usize,
    churn_objects: usize,
    view_objects: usize,
    warmup_frames: usize,
    measured_frames: usize,
    cold_ms_per_frame: f64,
    warm_ms_per_frame: f64,
    /// Cold frame time over warm frame time (higher is better).
    speedup: f64,
    cold_allocs_per_frame: Option<f64>,
    warm_allocs_per_frame: Option<f64>,
    /// Fraction of cold-arm allocations the warm arm avoids (0..1).
    alloc_reduction: Option<f64>,
    warm_solves: u64,
    cold_solves: u64,
    /// Steady-state per-frame time of the scalar (AoS) kernel battery.
    #[serde(default)]
    scalar_kernel_ms_per_frame: f64,
    /// Same battery through the data-oriented (SoA) kernels.
    #[serde(default)]
    soa_kernel_ms_per_frame: f64,
    /// Scalar kernel time over SoA kernel time (higher is better).
    #[serde(default)]
    soa_speedup: f64,
    /// Per-frame fan-out via a fresh scoped thread per camera (the
    /// dispatch style the hot path used to ship).
    #[serde(default)]
    scoped_dispatch_ms_per_frame: f64,
    /// The same fan-out through the persistent pool.
    #[serde(default)]
    pool_dispatch_ms_per_frame: f64,
    /// Scoped dispatch time over pool dispatch time (higher is better).
    #[serde(default)]
    pool_dispatch_speedup: f64,
}

/// `--check` tolerance: fail when the speedup ratio falls more than this
/// factor below the baseline's (a machine-portable "frame time regressed
/// by >15%" signal), or warm allocations grow by more than it.
const CHECK_TOLERANCE: f64 = 1.15;

/// Absolute floor on the SoA kernel speedup: the data-oriented rewrite
/// must stay at least this much faster than the scalar references on the
/// check machine, independent of the baseline's ratio.
const SOA_SPEEDUP_FLOOR: f64 = 1.3;

/// Absolute floor on the pool-dispatch speedup: parked-worker dispatch
/// must stay at least this much faster than per-frame thread spawns on
/// the check machine, independent of the baseline's ratio.
const POOL_DISPATCH_FLOOR: f64 = 1.2;

fn check_against(report: &Report, baseline_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: Report =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {baseline_path}: {e}"))?;
    if report.speedup < baseline.speedup / CHECK_TOLERANCE {
        return Err(format!(
            "steady-state regression: cold/warm speedup {:.2}x fell below baseline {:.2}x / {}",
            report.speedup, baseline.speedup, CHECK_TOLERANCE
        ));
    }
    if report.soa_speedup < SOA_SPEEDUP_FLOOR {
        return Err(format!(
            "SoA kernel regression: speedup {:.2}x fell below the {SOA_SPEEDUP_FLOOR}x floor",
            report.soa_speedup
        ));
    }
    if baseline.soa_speedup > 0.0 && report.soa_speedup < baseline.soa_speedup / CHECK_TOLERANCE {
        return Err(format!(
            "SoA kernel regression: speedup {:.2}x fell below baseline {:.2}x / {}",
            report.soa_speedup, baseline.soa_speedup, CHECK_TOLERANCE
        ));
    }
    if report.pool_dispatch_speedup < POOL_DISPATCH_FLOOR {
        return Err(format!(
            "dispatch regression: pool speedup {:.2}x fell below the {POOL_DISPATCH_FLOOR}x floor",
            report.pool_dispatch_speedup
        ));
    }
    if baseline.pool_dispatch_speedup > 0.0
        && report.pool_dispatch_speedup < baseline.pool_dispatch_speedup / CHECK_TOLERANCE
    {
        return Err(format!(
            "dispatch regression: pool speedup {:.2}x fell below baseline {:.2}x / {}",
            report.pool_dispatch_speedup, baseline.pool_dispatch_speedup, CHECK_TOLERANCE
        ));
    }
    if let (Some(now), Some(then)) = (report.warm_allocs_per_frame, baseline.warm_allocs_per_frame)
    {
        if now > then * CHECK_TOLERANCE {
            return Err(format!(
                "allocation regression: warm arm now allocates {now:.1}/frame vs baseline {then:.1}/frame"
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--check requires a baseline path");
                std::process::exit(2);
            })
            .clone()
    });

    let frames = WARMUP_FRAMES + MEASURED_FRAMES;
    eprintln!("generating workload ({frames} frames)...");
    let w = Workload::generate(frames);
    let profiles = [
        LatencyProfile::for_device(DeviceKind::Xavier),
        LatencyProfile::for_device(DeviceKind::Nano),
    ];
    eprintln!("verifying cold and warm arms agree bitwise...");
    verify(&w, frames);
    eprintln!("prebuilding kernel-arm flow fields...");
    let fields = KernelFields::build(&w, frames);
    eprintln!("verifying scalar and SoA kernel arms agree bitwise...");
    verify_kernels(&w, &fields, frames, &profiles);
    eprintln!("timing {REPS} interleaved repetitions per arm...");
    let mut cold = run_cold(&w);
    let mut warm = run_warm(&w);
    let mut scalar =
        run_kernel_arm::<ScalarKernelScratch>(&w, &fields, &profiles, scalar_kernel_frame);
    let mut soa = run_kernel_arm::<SoaKernelScratch>(&w, &fields, &profiles, soa_kernel_frame);
    let mut scoped_dispatch = run_dispatch_scoped(&w);
    let mut pool_dispatch = run_dispatch_pool(&w);
    assert_eq!(
        cold.checksum, warm.checksum,
        "timed arms diverged after verification"
    );
    assert_eq!(
        scalar.checksum, soa.checksum,
        "timed kernel arms diverged after verification"
    );
    assert_eq!(
        scoped_dispatch.checksum, pool_dispatch.checksum,
        "dispatch arms computed different payloads"
    );
    for _ in 1..REPS {
        let c = run_cold(&w);
        let h = run_warm(&w);
        let sc = run_kernel_arm::<ScalarKernelScratch>(&w, &fields, &profiles, scalar_kernel_frame);
        let so = run_kernel_arm::<SoaKernelScratch>(&w, &fields, &profiles, soa_kernel_frame);
        let sd = run_dispatch_scoped(&w);
        let pd = run_dispatch_pool(&w);
        cold.ms_per_frame = cold.ms_per_frame.min(c.ms_per_frame);
        warm.ms_per_frame = warm.ms_per_frame.min(h.ms_per_frame);
        scalar.ms_per_frame = scalar.ms_per_frame.min(sc.ms_per_frame);
        soa.ms_per_frame = soa.ms_per_frame.min(so.ms_per_frame);
        scoped_dispatch.ms_per_frame = scoped_dispatch.ms_per_frame.min(sd.ms_per_frame);
        pool_dispatch.ms_per_frame = pool_dispatch.ms_per_frame.min(pd.ms_per_frame);
    }

    // Solver stats from a fresh warm run over the whole frame sequence
    // (the timed warm arm's counters mix in the initial cold solve).
    let stats = {
        let mut solver = BalbSolver::new();
        solver.solve(&w.initial);
        for delta in &w.deltas {
            solver.apply_delta(delta).expect("delta is valid");
        }
        solver.stats()
    };

    let report = Report {
        cameras: M,
        base_objects: BASE_OBJECTS,
        churn_objects: CHURN_OBJECTS,
        view_objects: VIEW_OBJECTS,
        warmup_frames: WARMUP_FRAMES,
        measured_frames: MEASURED_FRAMES,
        cold_ms_per_frame: cold.ms_per_frame,
        warm_ms_per_frame: warm.ms_per_frame,
        speedup: cold.ms_per_frame / warm.ms_per_frame,
        cold_allocs_per_frame: cold.allocs_per_frame,
        warm_allocs_per_frame: warm.allocs_per_frame,
        alloc_reduction: cold
            .allocs_per_frame
            .zip(warm.allocs_per_frame)
            .map(|(c, h)| 1.0 - h / c),
        warm_solves: stats.warm_solves,
        cold_solves: stats.cold_solves,
        scalar_kernel_ms_per_frame: scalar.ms_per_frame,
        soa_kernel_ms_per_frame: soa.ms_per_frame,
        soa_speedup: scalar.ms_per_frame / soa.ms_per_frame,
        scoped_dispatch_ms_per_frame: scoped_dispatch.ms_per_frame,
        pool_dispatch_ms_per_frame: pool_dispatch.ms_per_frame,
        pool_dispatch_speedup: scoped_dispatch.ms_per_frame / pool_dispatch.ms_per_frame,
    };

    let mut table = TextTable::new(vec!["metric", "cold", "warm"]);
    table.row(vec![
        "ms/frame".to_string(),
        format!("{:.4}", report.cold_ms_per_frame),
        format!("{:.4}", report.warm_ms_per_frame),
    ]);
    table.row(vec![
        "allocs/frame".to_string(),
        report
            .cold_allocs_per_frame
            .map_or("n/a".into(), |a| format!("{a:.1}")),
        report
            .warm_allocs_per_frame
            .map_or("n/a".into(), |a| format!("{a:.1}")),
    ]);
    println!("{table}");
    println!("speedup: {:.2}x", report.speedup);
    if let Some(r) = report.alloc_reduction {
        println!("alloc reduction: {:.1}%", r * 100.0);
    }
    let mut kernels = TextTable::new(vec!["metric", "scalar", "soa"]);
    kernels.row(vec![
        "kernel ms/frame".to_string(),
        format!("{:.4}", report.scalar_kernel_ms_per_frame),
        format!("{:.4}", report.soa_kernel_ms_per_frame),
    ]);
    println!("{kernels}");
    println!("soa kernel speedup: {:.2}x", report.soa_speedup);
    let mut dispatch = TextTable::new(vec!["metric", "scoped", "pool"]);
    dispatch.row(vec![
        "dispatch ms/frame".to_string(),
        format!("{:.4}", report.scoped_dispatch_ms_per_frame),
        format!("{:.4}", report.pool_dispatch_ms_per_frame),
    ]);
    println!("{dispatch}");
    println!(
        "pool dispatch speedup: {:.2}x",
        report.pool_dispatch_speedup
    );

    let path = write_json("BENCH_hotpath", &report);
    println!("wrote {}", path.display());

    if let Some(baseline_path) = baseline {
        match check_against(&report, &baseline_path) {
            Ok(()) => println!("regression check vs {baseline_path}: OK"),
            Err(msg) => {
                eprintln!("regression check vs {baseline_path}: {msg}");
                std::process::exit(1);
            }
        }
    }
}
