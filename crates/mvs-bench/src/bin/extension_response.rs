//! Motivation experiment: what frame rate and end-to-end response delay
//! does each algorithm actually deliver?
//!
//! The paper's introduction argues that *"supporting a higher frame rate
//! entails lowering frame processing latency"* and that faster processing
//! *"helps reduce the end-to-end system response delay to physical
//! events."* This harness replays every camera's per-frame DNN-latency
//! series through a single-GPU latest-frame queue ([`replay_response`])
//! and reports the slowest camera's sustained FPS and capture→completion
//! delay.
//!
//! Run with `cargo run --release -p mvs-bench --bin extension_response`.

use mvs_bench::{experiment_config, write_json, SCENARIOS};
use mvs_metrics::TextTable;
use mvs_sim::{replay_response, run_pipeline, Algorithm, QueuePolicy, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    algorithm: String,
    effective_fps: f64,
    mean_delay_ms: f64,
    max_delay_ms: f64,
    dropped_fraction: f64,
}

fn main() {
    let algorithms = [
        Algorithm::Full,
        Algorithm::BalbInd,
        Algorithm::StaticPartition,
        Algorithm::Balb,
    ];
    let mut rows = Vec::new();
    let mut table = TextTable::new(vec![
        "scenario",
        "algorithm",
        "effective FPS",
        "mean delay",
        "max delay",
        "dropped",
    ]);
    for kind in SCENARIOS {
        let scenario = Scenario::new(kind);
        let period_ms = 1e3 / scenario.fps;
        for algorithm in algorithms {
            let result = run_pipeline(&scenario, &experiment_config(algorithm));
            // The camera with the worst sustained rate bounds the system,
            // exactly like the paper's max-latency objective.
            let per_camera: Vec<_> = result
                .per_camera_series_ms
                .iter()
                .map(|series| replay_response(series, period_ms, QueuePolicy::DropToLatest))
                .collect();
            let worst = per_camera
                .iter()
                .min_by(|a, b| {
                    a.effective_fps
                        .partial_cmp(&b.effective_fps)
                        .expect("finite fps")
                })
                .expect("at least one camera");
            let total_frames = result.frames * scenario.num_cameras();
            let dropped: usize = per_camera.iter().map(|s| s.dropped).sum();
            table.row(vec![
                kind.to_string(),
                algorithm.to_string(),
                format!("{:.1}", worst.effective_fps),
                format!("{:.0} ms", worst.mean_delay_ms),
                format!("{:.0} ms", worst.max_delay_ms),
                format!("{:.0}%", 100.0 * dropped as f64 / total_frames as f64),
            ]);
            rows.push(Row {
                scenario: kind.to_string(),
                algorithm: algorithm.to_string(),
                effective_fps: worst.effective_fps,
                mean_delay_ms: worst.mean_delay_ms,
                max_delay_ms: worst.max_delay_ms,
                dropped_fraction: dropped as f64 / total_frames as f64,
            });
        }
    }
    println!("Motivation — sustained frame rate and response delay (slowest camera,");
    println!("latest-frame queueing at the 10 FPS capture rate)\n");
    println!("{table}");
    println!("Full-frame inspection sustains ~1.5 FPS on the Nano-bound fleet; BALB's");
    println!("latency reduction is what makes near-capture-rate processing possible —");
    println!("the paper's opening argument, made quantitative.");
    let path = write_json("extension_response", &rows);
    println!("\nwrote {}", path.display());
}
