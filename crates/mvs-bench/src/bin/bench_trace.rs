//! Observability artifact: per-stage latency breakdown from the span
//! recorder, written to `results/BENCH_trace.json`.
//!
//! Runs the full BALB pipeline on S2 with tracing enabled and reduces the
//! span stream to per-stage p50/p99 modeled latency and each stage's share
//! of the total. Two overhead checks ride along: the traced run must agree
//! bitwise with the untraced run (spans are pure observation), and the
//! disabled-path cost — a `span_into(None, ..)` micro-benchmark projected
//! over the number of spans a traced run records — must stay under 1% of
//! the untraced pipeline's wall time.
//!
//! Run with `cargo run --release -p mvs-bench --bin bench_trace`.

use mvs_bench::{write_json, SEED};
use mvs_sim::{
    run_pipeline, run_pipeline_traced, Algorithm, PipelineConfig, Scenario, ScenarioKind,
};
use mvs_trace::{span_into, Stage};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const NOOP_CALLS: u64 = 20_000_000;

#[derive(Serialize)]
struct StageRow {
    stage: String,
    spans: usize,
    items: u64,
    p50_ms: f64,
    p99_ms: f64,
    total_ms: f64,
    share: f64,
}

#[derive(Serialize)]
struct Report {
    scenario: String,
    algorithm: String,
    train_s: f64,
    eval_s: f64,
    spans: usize,
    stages: Vec<StageRow>,
    untraced_wall_ms: f64,
    traced_wall_ms: f64,
    noop_ns_per_call: f64,
    projected_disabled_overhead_frac: f64,
}

fn config() -> PipelineConfig {
    PipelineConfig {
        train_s: 30.0,
        eval_s: 30.0,
        seed: SEED,
        // Pure-function mode so the traced and untraced runs are
        // comparable bitwise.
        measured_overheads: false,
        ..PipelineConfig::paper_default(Algorithm::Balb)
    }
}

fn main() {
    let scenario = Scenario::new(ScenarioKind::S2);
    let cfg = config();

    let started = Instant::now();
    let untraced = run_pipeline(&scenario, &cfg);
    let untraced_wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let (traced, trace) = run_pipeline_traced(&scenario, &cfg);
    let traced_wall_ms = started.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        untraced, traced,
        "recording spans must not perturb the simulation"
    );

    // Disabled-path cost: the instrumented hot paths reduce to
    // `span_into(None, ..)`. Measure it directly and project over the
    // number of spans one traced run records.
    let started = Instant::now();
    for i in 0..NOOP_CALLS {
        span_into(
            black_box(None),
            black_box(Stage::Flow),
            black_box(9.0),
            black_box(i as usize & 7),
        );
    }
    let noop_ns_per_call = started.elapsed().as_secs_f64() * 1e9 / NOOP_CALLS as f64;
    let projected_ms = noop_ns_per_call * trace.len() as f64 / 1e6;
    let projected_frac = projected_ms / untraced_wall_ms;
    assert!(
        projected_frac < 0.01,
        "disabled tracer projected at {:.3}% of pipeline wall time \
         ({noop_ns_per_call:.2} ns/call x {} spans vs {untraced_wall_ms:.0} ms)",
        projected_frac * 100.0,
        trace.len()
    );

    let stats = trace.stage_stats();
    let total_ms = trace.total_modeled_ms().max(f64::MIN_POSITIVE);
    let stages: Vec<StageRow> = stats
        .iter()
        .map(|(stage, s)| StageRow {
            stage: stage.name().to_string(),
            spans: s.summary.count,
            items: s.items,
            p50_ms: s.summary.p50,
            p99_ms: s.summary.p99,
            total_ms: s.total_ms,
            share: s.total_ms / total_ms,
        })
        .collect();

    println!(
        "per-stage modeled latency (S2, BALB, {} spans)\n",
        trace.len()
    );
    println!("{}", trace.prometheus_text());
    println!(
        "untraced {untraced_wall_ms:.0} ms, traced {traced_wall_ms:.0} ms, \
         no-op span {noop_ns_per_call:.2} ns/call, projected disabled overhead {:.4}%",
        projected_frac * 100.0
    );

    let report = Report {
        scenario: "S2".to_string(),
        algorithm: Algorithm::Balb.to_string(),
        train_s: 30.0,
        eval_s: 30.0,
        spans: trace.len(),
        stages,
        untraced_wall_ms,
        traced_wall_ms,
        noop_ns_per_call,
        projected_disabled_overhead_frac: projected_frac,
    };
    let path = write_json("BENCH_trace", &report);
    println!("\nwrote {}", path.display());
}
