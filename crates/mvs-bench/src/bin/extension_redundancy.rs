//! Extension experiment (paper Sec. V, "Dynamic occlusion" and
//! "Imperfect object association"): assign each object to multiple
//! cameras. Sweeps the redundancy factor on the occlusion-heavy busy
//! scenario (S3) and reports the recall/latency trade-off, plus the
//! alternative total-workload objective from "Alternative problem
//! formulations".
//!
//! Run with `cargo run --release -p mvs-bench --bin extension_redundancy`.

use mvs_bench::{experiment_config, write_json, SEED};
use mvs_core::{balb_central, extensions, MvsProblem, ProblemConfig};
use mvs_metrics::TextTable;
use mvs_sim::{run_pipeline, Algorithm, Scenario, ScenarioKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct RedundancyRow {
    scenario: String,
    redundancy: usize,
    recall: f64,
    mean_latency_ms: f64,
}

#[derive(Serialize)]
struct ObjectiveRow {
    cameras: usize,
    objects: usize,
    balb_max_ms: f64,
    balb_total_ms: f64,
    workload_max_ms: f64,
    workload_total_ms: f64,
}

#[derive(Serialize)]
struct Report {
    redundancy: Vec<RedundancyRow>,
    objectives: Vec<ObjectiveRow>,
}

fn main() {
    println!("Extension 1 — redundant multi-camera assignment (S3 + S1)\n");
    let mut table = TextTable::new(vec!["scenario", "redundancy", "recall", "latency (ms)"]);
    let mut redundancy_rows = Vec::new();
    for kind in [ScenarioKind::S3, ScenarioKind::S1] {
        let scenario = Scenario::new(kind);
        for redundancy in 1..=3usize {
            let mut config = experiment_config(Algorithm::Balb);
            config.redundancy = redundancy;
            let result = run_pipeline(&scenario, &config);
            table.row(vec![
                kind.to_string(),
                redundancy.to_string(),
                format!("{:.3}", result.recall),
                format!("{:.1}", result.mean_latency_ms),
            ]);
            redundancy_rows.push(RedundancyRow {
                scenario: kind.to_string(),
                redundancy,
                recall: result.recall,
                mean_latency_ms: result.mean_latency_ms,
            });
        }
    }
    println!("{table}");
    println!("Redundant views buy occlusion robustness (recall ↑) at a latency cost —");
    println!("the trade-off the paper proposes investigating.\n");

    println!("Extension 2 — max-latency vs total-workload objectives\n");
    let mut obj_table = TextTable::new(vec![
        "M",
        "N",
        "BALB max",
        "BALB total",
        "workload max",
        "workload total",
    ]);
    let mut objective_rows = Vec::new();
    for &(m, n) in &[(3usize, 20usize), (5, 40), (5, 80)] {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED);
        let (mut bm, mut bt, mut wm, mut wt) = (0.0, 0.0, 0.0, 0.0);
        let trials = 20;
        for _ in 0..trials {
            let p = MvsProblem::random(&mut rng, m, n, &ProblemConfig::default());
            let balb = balb_central(&p);
            bm += balb.assignment.system_latency_ms(&p, false);
            bt += extensions::total_workload_ms(&p, &balb.assignment);
            let (wa, total) = extensions::min_total_workload(&p);
            wm += wa.system_latency_ms(&p, false);
            wt += total;
        }
        let n_f = trials as f64;
        obj_table.row(vec![
            m.to_string(),
            n.to_string(),
            format!("{:.1} ms", bm / n_f),
            format!("{:.1} ms", bt / n_f),
            format!("{:.1} ms", wm / n_f),
            format!("{:.1} ms", wt / n_f),
        ]);
        objective_rows.push(ObjectiveRow {
            cameras: m,
            objects: n,
            balb_max_ms: bm / n_f,
            balb_total_ms: bt / n_f,
            workload_max_ms: wm / n_f,
            workload_total_ms: wt / n_f,
        });
    }
    println!("{obj_table}");
    println!("The total-workload scheduler consistently reduces cumulative GPU time");
    println!("(energy). Note the max columns here exclude the full-frame floors that");
    println!("BALB's objective includes — its response-time advantage is the Fig. 13");
    println!("pipeline result, not this table.");
    let path = write_json(
        "extension_redundancy",
        &Report {
            redundancy: redundancy_rows,
            objectives: objective_rows,
        },
    );
    println!("\nwrote {}", path.display());
}
