//! Fig. 2 — temporal variation of per-camera object workload in S1.
//!
//! Samples the number of visible objects per camera once every 2 seconds
//! over two minutes, like the paper's motivating plot, and reports the
//! per-camera mean/min/max plus the pairwise imbalance statistics that
//! motivate dynamic scheduling.
//!
//! Run with `cargo run --release -p mvs-bench --bin fig2_workload`.

use mvs_bench::{write_json, SEED};
use mvs_metrics::{sparkline_fit, Summary, TextTable};
use mvs_sim::{Scenario, ScenarioKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct CameraSeries {
    camera: usize,
    device: String,
    samples: Vec<usize>,
    mean: f64,
    min: usize,
    max: usize,
}

fn main() {
    let scenario = Scenario::new(ScenarioKind::S1);
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let series = scenario.workload_series(120.0, 2.0, &mut rng);

    let mut table = TextTable::new(vec![
        "camera", "device", "mean", "min", "max", "spread", "series",
    ]);
    let mut out = Vec::new();
    for (i, s) in series.iter().enumerate() {
        let as_f: Vec<f64> = s.iter().map(|&v| v as f64).collect();
        let summary = Summary::of(&as_f);
        let min = *s.iter().min().expect("non-empty series");
        let max = *s.iter().max().expect("non-empty series");
        table.row(vec![
            format!("c{i}"),
            scenario.devices[i].to_string(),
            format!("{:.1}", summary.mean),
            min.to_string(),
            max.to_string(),
            (max - min).to_string(),
            sparkline_fit(&as_f, 40),
        ]);
        out.push(CameraSeries {
            camera: i,
            device: scenario.devices[i].to_string(),
            samples: s.clone(),
            mean: summary.mean,
            min,
            max,
        });
    }
    println!("Fig. 2 — objects/frame per camera, S1, sampled every 2 s over 120 s\n");
    println!("{table}");

    // The motivating observation: the identity of the busiest camera keeps
    // changing over time.
    let samples = series[0].len();
    let mut busiest_changes = 0;
    let mut prev_busiest = None;
    for t in 0..samples {
        let busiest = (0..series.len())
            .max_by_key(|&c| series[c][t])
            .expect("at least one camera");
        if prev_busiest.is_some_and(|p| p != busiest) {
            busiest_changes += 1;
        }
        prev_busiest = Some(busiest);
    }
    println!("busiest-camera identity changed {busiest_changes} times across {samples} samples");
    let path = write_json("fig2_workload", &out);
    println!("\nwrote {}", path.display());
}
