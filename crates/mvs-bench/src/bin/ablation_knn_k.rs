//! Ablation: the paper fixes KNN's `k = 3` for both association models
//! without reporting a sweep. This harness cross-validates k ∈ {1,3,5,9}
//! on the classification task and measures the end-to-end pipeline recall
//! per k, checking whether the paper's choice sits on the plateau.
//!
//! Run with `cargo run --release -p mvs-bench --bin ablation_knn_k`.

use mvs_bench::{classification_dataset, experiment_config, write_json, SEED, TRAIN_S};
use mvs_metrics::TextTable;
use mvs_ml::{cross_validate, Classifier, KnnClassifier};
use mvs_sim::{run_pipeline, Algorithm, CorrespondenceData, Scenario, ScenarioKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: usize,
    cv_accuracy_s1: f64,
    pipeline_recall_s2: f64,
    pipeline_latency_s2: f64,
}

fn main() {
    // Cross-validated classification accuracy on S1's pooled pairs.
    let scenario = Scenario::new(ScenarioKind::S1);
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let data = CorrespondenceData::collect(&scenario, TRAIN_S, 2, &mut rng);
    let mut pooled_x = Vec::new();
    let mut pooled_y = Vec::new();
    for samples in data.pairs.values() {
        let (xs, ys) = classification_dataset(samples);
        pooled_x.extend(xs);
        pooled_y.extend(ys);
    }

    let s2 = Scenario::new(ScenarioKind::S2);
    let mut rows = Vec::new();
    let mut table = TextTable::new(vec![
        "k",
        "CV accuracy (S1 cls)",
        "pipeline recall (S2)",
        "latency (ms)",
    ]);
    for k in [1usize, 3, 5, 9] {
        let acc = cross_validate(&pooled_x, &pooled_y, 5, |tx, ty, vx| {
            let model = KnnClassifier::fit(k, tx, ty)?;
            Ok(model.predict_batch(vx))
        })
        .expect("pooled data is well-formed");
        let mut config = experiment_config(Algorithm::Balb);
        config.assoc_k = k;
        let result = run_pipeline(&s2, &config);
        table.row(vec![
            k.to_string(),
            format!("{acc:.3}"),
            format!("{:.3}", result.recall),
            format!("{:.1}", result.mean_latency_ms),
        ]);
        rows.push(Row {
            k,
            cv_accuracy_s1: acc,
            pipeline_recall_s2: result.recall,
            pipeline_latency_s2: result.mean_latency_ms,
        });
    }
    println!("Ablation — KNN neighbour count k\n");
    println!("{table}");
    println!("The paper's k = 3 should sit on the accuracy plateau: k = 1 is noisier,");
    println!("large k blurs the visibility boundary at camera-view edges.");
    let path = write_json("ablation_knn_k", &rows);
    println!("\nwrote {}", path.display());
}
