//! Ablations beyond the paper's figures (design-choice validation):
//!
//! 1. **BALB vs exact** — approximation quality of the greedy central
//!    stage against a branch-and-bound optimum on random MVS instances.
//! 2. **Batch-awareness** — BALB with batching disabled (`B ≡ 1`),
//!    isolating how much of the speedup comes from GPU batching.
//! 3. **SP model sensitivity** — SP with learned masks vs SP granted
//!    oracle world geometry, isolating how much of SP's deficit is
//!    correlation-model error.
//!
//! Run with `cargo run --release -p mvs-bench --bin ablation_balb`.

use mvs_bench::{experiment_config, write_json, SCENARIOS, SEED};
use mvs_core::{balb_central, exact, MvsProblem, ProblemConfig};
use mvs_metrics::TextTable;
use mvs_sim::{run_pipeline, Algorithm, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct AblationReport {
    approx: Vec<ApproxRow>,
    batching: Vec<BatchRow>,
    sp_oracle: Vec<SpRow>,
}

#[derive(Serialize)]
struct ApproxRow {
    cameras: usize,
    objects: usize,
    with_full_frame: bool,
    instances: usize,
    optimal_hits: usize,
    mean_ratio: f64,
    worst_ratio: f64,
}

#[derive(Serialize)]
struct BatchRow {
    scenario: String,
    with_batching_ms: f64,
    without_batching_ms: f64,
    batching_gain: f64,
}

#[derive(Serialize)]
struct SpRow {
    scenario: String,
    sp_ms: f64,
    sp_recall: f64,
    sp_oracle_ms: f64,
    sp_oracle_recall: f64,
}

fn main() {
    // 1. Approximation quality.
    println!("Ablation 1 — BALB central stage vs exact optimum\n");
    let mut approx_table = TextTable::new(vec![
        "M",
        "N",
        "t_full floor",
        "instances",
        "optimal",
        "mean ratio",
        "worst ratio",
    ]);
    let mut approx = Vec::new();
    // With the t^full floor (the paper's objective) the slowest camera's
    // full-frame time often dominates; without it the pure balancing
    // quality of the greedy stage is exposed.
    for &with_full in &[true, false] {
        for &(m, n) in &[(2usize, 8usize), (3, 9), (4, 10), (5, 8)] {
            let mut rng = ChaCha8Rng::seed_from_u64(SEED);
            let mut hits = 0;
            let mut ratios = Vec::new();
            let instances = 30;
            for _ in 0..instances {
                let p = MvsProblem::random(&mut rng, m, n, &ProblemConfig::default());
                let opt = exact::solve(&p, with_full, 50_000_000).expect("instance within budget");
                let balb = balb_central(&p).assignment.system_latency_ms(&p, with_full);
                let ratio = balb / opt.system_latency_ms;
                if ratio < 1.0 + 1e-9 {
                    hits += 1;
                }
                ratios.push(ratio);
            }
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let worst = ratios.iter().fold(1.0_f64, |a, &b| a.max(b));
            approx_table.row(vec![
                m.to_string(),
                n.to_string(),
                with_full.to_string(),
                instances.to_string(),
                format!("{hits}/{instances}"),
                format!("{mean:.3}"),
                format!("{worst:.3}"),
            ]);
            approx.push(ApproxRow {
                cameras: m,
                objects: n,
                with_full_frame: with_full,
                instances,
                optimal_hits: hits,
                mean_ratio: mean,
                worst_ratio: worst,
            });
        }
    }
    println!("{approx_table}");

    // 2. Batching contribution.
    println!("Ablation 2 — batch-awareness contribution (BALB)\n");
    let mut batch_table = TextTable::new(vec!["scenario", "batched", "B=1", "gain"]);
    let mut batching = Vec::new();
    for kind in SCENARIOS {
        let scenario = Scenario::new(kind);
        let with = run_pipeline(&scenario, &experiment_config(Algorithm::Balb));
        let mut config = experiment_config(Algorithm::Balb);
        config.disable_batching = true;
        let without = run_pipeline(&scenario, &config);
        let gain = without.mean_latency_ms / with.mean_latency_ms;
        batch_table.row(vec![
            kind.to_string(),
            format!("{:.1} ms", with.mean_latency_ms),
            format!("{:.1} ms", without.mean_latency_ms),
            format!("{gain:.2}x"),
        ]);
        batching.push(BatchRow {
            scenario: kind.to_string(),
            with_batching_ms: with.mean_latency_ms,
            without_batching_ms: without.mean_latency_ms,
            batching_gain: gain,
        });
    }
    println!("{batch_table}");

    // 3. SP model sensitivity.
    println!("Ablation 3 — SP with learned masks vs oracle geometry\n");
    let mut sp_table = TextTable::new(vec![
        "scenario",
        "SP (learned)",
        "recall",
        "SP (oracle)",
        "recall",
    ]);
    let mut sp_oracle = Vec::new();
    for kind in SCENARIOS {
        let scenario = Scenario::new(kind);
        let sp = run_pipeline(&scenario, &experiment_config(Algorithm::StaticPartition));
        let oracle = run_pipeline(
            &scenario,
            &experiment_config(Algorithm::StaticPartitionOracle),
        );
        sp_table.row(vec![
            kind.to_string(),
            format!("{:.1} ms", sp.mean_latency_ms),
            format!("{:.3}", sp.recall),
            format!("{:.1} ms", oracle.mean_latency_ms),
            format!("{:.3}", oracle.recall),
        ]);
        sp_oracle.push(SpRow {
            scenario: kind.to_string(),
            sp_ms: sp.mean_latency_ms,
            sp_recall: sp.recall,
            sp_oracle_ms: oracle.mean_latency_ms,
            sp_oracle_recall: oracle.recall,
        });
    }
    println!("{sp_table}");

    let path = write_json(
        "ablation_balb",
        &AblationReport {
            approx,
            batching,
            sp_oracle,
        },
    );
    println!("wrote {}", path.display());
}
