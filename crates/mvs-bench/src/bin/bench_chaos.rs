//! Chaos benchmark: the `mvs serve` event loop swept over seeded fault
//! schedules, written to `results/BENCH_chaos.json`.
//!
//! Each mix runs [`run_serve`] under a different failure regime —
//! coordinator crashes restored from checkpoints, per-tenant pipeline
//! poison with quarantine and re-admission, compute-pool degradation
//! forcing mid-run admission re-evaluation, and a storm combining all of
//! them with the camera-level fault model. After every run the bin
//! machine-checks the serve invariants that must survive any fault
//! schedule:
//!
//! * frame conservation — `captured == processed + queue_dropped +
//!   policy_skipped + replayed`, per tenant and in aggregate;
//! * bounded lanes — no ingest lane ever exceeds depth 1;
//! * no stuck tenant — every non-rejected tenant that captured frames
//!   either processed some or ended quarantined;
//! * sane recovery accounting — availability in [0, 1], MTTR and the
//!   post-recovery p99 finite whenever a restart happened.
//!
//! Every number is *modeled*: the event loop runs on a virtual clock and
//! the chaos schedule is drawn from its own seeded stream, so the whole
//! report is a deterministic function of the configs and bitwise
//! reproducible on any host.
//!
//! `--check <baseline.json>` gates the storm mix's post-recovery p99 and
//! MTTR (ratio ceilings) and its availability (absolute floor) against a
//! checked-in baseline and exits non-zero on regression — the CI chaos
//! gate.
//!
//! Run with `cargo run --release -p mvs-bench --bin bench_chaos`.

use mvs_bench::{write_json, SEED};
use mvs_metrics::TextTable;
use mvs_sim::{run_serve, FaultModel, PoolDegrade, ServeConfig, ServeFaultModel, ServeReport};
use serde::{Deserialize, Serialize};

/// Accept up to 20% regression of the gated latency metrics (p99, MTTR)
/// before failing. Deterministic metrics: the headroom absorbs
/// intentional model retuning, not measurement noise.
const CHECK_TOLERANCE: f64 = 1.20;
/// Accept at most this much availability loss versus the baseline.
const AVAILABILITY_SLACK: f64 = 0.02;

/// One fault regime of the sweep.
struct Mix {
    name: &'static str,
    config: ServeConfig,
}

/// Base serving workload shared by every regime: 6 tenants × 6 cameras
/// at 10 fps with the pool sized so the ladder is exercised but most of
/// the fleet is admitted — faults, not overload, drive the story.
fn base() -> ServeConfig {
    ServeConfig {
        tenants: 6,
        cameras_per_tenant: 6,
        fps: 10.0,
        duration_s: 15.0,
        capacity_cores: 12.0,
        seed: SEED,
        train_s: 12.0,
        ..ServeConfig::default()
    }
}

/// The storm: coordinator crashes, pipeline poison, pool degradation,
/// and the camera-level fault model all at once. Gated mix.
fn storm() -> ServeConfig {
    ServeConfig {
        faults: FaultModel {
            keyframe_loss: 0.05,
            dropout_per_horizon: 0.05,
            rejoin_per_horizon: 0.3,
            ..FaultModel::none()
        },
        chaos: ServeFaultModel {
            seed: SEED,
            crash_at_us: vec![4_000_000, 9_500_000],
            poison_per_frame: 0.01,
            quarantine_us: 2_000_000,
            degrades: vec![
                PoolDegrade {
                    at_us: 6_000_000,
                    capacity_factor: 0.6,
                    service_inflation: 1.3,
                },
                PoolDegrade {
                    at_us: 12_000_000,
                    capacity_factor: 1.0,
                    service_inflation: 1.0,
                },
            ],
            ..ServeFaultModel::none()
        },
        snapshot_every_horizons: 1,
        ..base()
    }
}

fn mixes() -> Vec<Mix> {
    vec![
        Mix {
            name: "crash-recover",
            config: ServeConfig {
                chaos: ServeFaultModel {
                    seed: SEED,
                    crash_at_us: vec![5_000_000, 10_000_000],
                    ..ServeFaultModel::none()
                },
                snapshot_every_horizons: 1,
                ..base()
            },
        },
        Mix {
            name: "poison-quarantine",
            config: ServeConfig {
                chaos: ServeFaultModel {
                    seed: SEED,
                    poison_per_frame: 0.005,
                    quarantine_us: 2_000_000,
                    ..ServeFaultModel::none()
                },
                ..base()
            },
        },
        Mix {
            name: "pool-degrade",
            config: ServeConfig {
                chaos: ServeFaultModel {
                    seed: SEED,
                    degrades: vec![
                        PoolDegrade {
                            at_us: 5_000_000,
                            capacity_factor: 0.5,
                            service_inflation: 1.5,
                        },
                        PoolDegrade {
                            at_us: 10_000_000,
                            capacity_factor: 1.0,
                            service_inflation: 1.0,
                        },
                    ],
                    ..ServeFaultModel::none()
                },
                ..base()
            },
        },
        Mix {
            name: "chaos-storm",
            config: storm(),
        },
    ]
}

#[derive(Serialize, Deserialize)]
struct MixRow {
    name: String,
    tenants: usize,
    cameras_per_tenant: usize,
    capacity_cores: f64,
    restarts: u64,
    quarantines: u64,
    readmissions: u64,
    poisoned_steps: u64,
    replayed: u64,
    snapshots_taken: u64,
    transitions: usize,
    mttr_ms: f64,
    availability: f64,
    post_recovery_p99_ms: f64,
    captured: u64,
    processed: u64,
    drop_rate: f64,
    e2e_p99_ms: f64,
    core_utilization: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    seed: u64,
    /// Storm-mix post-recovery end-to-end p99: the gated headline.
    headline_post_recovery_p99_ms: f64,
    /// Storm-mix mean time to recover, also gated (ratio ceiling).
    headline_mttr_ms: f64,
    /// Storm-mix availability, gated with an absolute floor.
    headline_availability: f64,
    mixes: Vec<MixRow>,
}

/// Machine-check the invariants that must hold under *any* fault
/// schedule. Panics (failing the bench and the CI step) on violation.
fn assert_invariants(name: &str, report: &ServeReport) {
    let mut captured = 0u64;
    for t in &report.tenants {
        assert!(
            t.max_lane_depth <= 1,
            "{name}/tenant {}: lane depth {} > 1",
            t.tenant,
            t.max_lane_depth
        );
        assert_eq!(
            t.captured,
            t.processed + t.queue_dropped + t.policy_skipped + t.replayed,
            "{name}/tenant {}: frame conservation violated",
            t.tenant
        );
        captured += t.captured;
    }
    assert_eq!(
        report.captured, captured,
        "{name}: aggregate capture count disagrees with tenants"
    );
    assert_eq!(
        report.captured,
        report.processed + report.queue_dropped + report.policy_skipped + report.replayed,
        "{name}: aggregate frame conservation violated"
    );
    assert!(
        (0.0..=1.0).contains(&report.availability),
        "{name}: availability {} outside [0, 1]",
        report.availability
    );
    if report.recovery.restarts > 0 {
        assert!(
            report.recovery.mttr_us().is_finite() && report.recovery.mttr_us() > 0.0,
            "{name}: restarts happened but MTTR is {}",
            report.recovery.mttr_us()
        );
        assert!(
            report.post_recovery_e2e_ms.p99.is_finite(),
            "{name}: post-recovery p99 not finite after a restart"
        );
        assert!(report.availability < 1.0, "{name}: outage left no trace");
    }
    // No stuck tenant: anyone who captured frames and was not rejected
    // outright either processed work or sits in a terminal quarantine.
    for t in &report.tenants {
        let rejected = format!("{:?}", t.decision).starts_with("Rejected");
        let quarantined = format!("{:?}", t.decision).starts_with("Quarantined");
        if t.captured > 0 && !rejected && !quarantined {
            assert!(
                t.processed > 0,
                "{name}/tenant {}: captured {} frames, processed none, not quarantined",
                t.tenant,
                t.captured
            );
        }
    }
}

fn row(name: &str, report: &ServeReport) -> MixRow {
    MixRow {
        name: name.to_string(),
        tenants: report.config.tenants,
        cameras_per_tenant: report.config.cameras_per_tenant,
        capacity_cores: report.config.capacity_cores,
        restarts: report.recovery.restarts,
        quarantines: report.recovery.quarantines,
        readmissions: report.recovery.readmissions,
        poisoned_steps: report.recovery.poisoned_steps,
        replayed: report.replayed,
        snapshots_taken: report.recovery.snapshots_taken,
        transitions: report.transitions.len(),
        mttr_ms: report.recovery.mttr_us() / 1e3,
        availability: report.availability,
        post_recovery_p99_ms: report.post_recovery_e2e_ms.p99,
        captured: report.captured,
        processed: report.processed,
        drop_rate: report.drop_rate,
        e2e_p99_ms: report.e2e_ms.p99,
        core_utilization: report.core_utilization,
    }
}

fn check_against(report: &Report, path: &str) -> Result<(), String> {
    let raw =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let baseline: Report =
        serde_json::from_str(&raw).map_err(|e| format!("cannot parse baseline {path}: {e}"))?;
    let p99_ceiling = baseline.headline_post_recovery_p99_ms * CHECK_TOLERANCE;
    if report.headline_post_recovery_p99_ms > p99_ceiling {
        return Err(format!(
            "storm post-recovery p99 regressed: {:.1} ms > {:.1} ms (baseline {:.1} ms × {CHECK_TOLERANCE})",
            report.headline_post_recovery_p99_ms, p99_ceiling, baseline.headline_post_recovery_p99_ms
        ));
    }
    let mttr_ceiling = baseline.headline_mttr_ms * CHECK_TOLERANCE;
    if report.headline_mttr_ms > mttr_ceiling {
        return Err(format!(
            "storm MTTR regressed: {:.1} ms > {:.1} ms (baseline {:.1} ms × {CHECK_TOLERANCE})",
            report.headline_mttr_ms, mttr_ceiling, baseline.headline_mttr_ms
        ));
    }
    let availability_floor = baseline.headline_availability - AVAILABILITY_SLACK;
    if report.headline_availability < availability_floor {
        return Err(format!(
            "storm availability regressed: {:.4} < {:.4} (baseline {:.4} − {AVAILABILITY_SLACK})",
            report.headline_availability, availability_floor, baseline.headline_availability
        ));
    }
    println!(
        "check ok: storm post-recovery p99 {:.1} ms <= {:.1} ms, MTTR {:.1} ms <= {:.1} ms, availability {:.4} >= {:.4}",
        report.headline_post_recovery_p99_ms,
        p99_ceiling,
        report.headline_mttr_ms,
        mttr_ceiling,
        report.headline_availability,
        availability_floor
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--check requires a baseline path");
                std::process::exit(2);
            })
            .clone()
    });

    let mut rows = Vec::new();
    let mut table = TextTable::new(vec![
        "mix",
        "restarts",
        "quar/readm",
        "replayed",
        "mttr (ms)",
        "avail",
        "post-rec p99",
        "e2e p99 (ms)",
    ]);
    for mix in mixes() {
        let report = run_serve(&mix.config);
        assert_invariants(mix.name, &report);
        let r = row(mix.name, &report);
        table.row(vec![
            r.name.clone(),
            format!("{}", r.restarts),
            format!("{}/{}", r.quarantines, r.readmissions),
            format!("{}", r.replayed),
            format!("{:.1}", r.mttr_ms),
            format!("{:.4}", r.availability),
            format!("{:.1}", r.post_recovery_p99_ms),
            format!("{:.1}", r.e2e_p99_ms),
        ]);
        rows.push(r);
    }

    let headline = rows.last().expect("sweep has mixes");
    assert!(
        headline.restarts > 0,
        "storm mix must exercise crash recovery"
    );
    let report = Report {
        seed: SEED,
        headline_post_recovery_p99_ms: headline.post_recovery_p99_ms,
        headline_mttr_ms: headline.mttr_ms,
        headline_availability: headline.availability,
        mixes: rows,
    };

    println!("Serve-layer chaos sweep (virtual clock, deterministic)\n");
    println!("{table}");
    println!(
        "headline: storm post-recovery p99 {:.1} ms, MTTR {:.1} ms, availability {:.4}",
        report.headline_post_recovery_p99_ms, report.headline_mttr_ms, report.headline_availability
    );

    let path = write_json("BENCH_chaos", &report);
    println!("\nwrote {}", path.display());

    if let Some(baseline) = check_path {
        if let Err(msg) = check_against(&report, &baseline) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
