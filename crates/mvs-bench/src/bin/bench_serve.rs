//! Multi-tenant serving benchmark: the `mvs serve` event loop swept over
//! tenant mixes on the city generator, written to
//! `results/BENCH_serve.json`.
//!
//! Each mix runs [`run_serve`]: N independently seeded city tenants
//! multiplexed onto one provisioned compute pool through depth-1
//! latest-frame-wins ingest lanes, with the admission ladder (shed
//! redundancy → frame thinning → reject) squeezing the aggregate modeled
//! load under the capacity budget. Per mix the bin reports admission
//! decisions, the end-to-end p99 latency (capture → completion, queueing
//! included), the combined drop rate (backpressure + policy thinning),
//! and pool utilization.
//!
//! Every number here is *modeled* — the event loop runs on a virtual
//! clock and is a deterministic function of the config — so the results
//! are bitwise reproducible on any host and the regression gate can be
//! tight.
//!
//! The flagship mix is the ISSUE 7 acceptance workload: 16 tenants × 8
//! cameras at 10 fps under the fault model (key-frame loss and camera
//! dropout), which must complete with zero panics and bounded lanes.
//!
//! `--check <baseline.json>` compares the flagship p99 and drop rate
//! against a checked-in baseline and exits non-zero on regression — the
//! CI serving gate.
//!
//! Run with `cargo run --release -p mvs-bench --bin bench_serve`.

use mvs_bench::{write_json, SEED};
use mvs_metrics::TextTable;
use mvs_sim::{run_serve, FaultModel, ServeConfig, ServeReport};
use serde::{Deserialize, Serialize};

/// Accept up to 20% regression of the flagship p99 before failing. The
/// metric is deterministic, so this headroom absorbs intentional model
/// retuning, not measurement noise.
const CHECK_TOLERANCE: f64 = 1.20;
/// Accept at most this much additional drop rate over the baseline.
const DROP_SLACK: f64 = 0.05;

/// One serving mix of the sweep.
struct Mix {
    name: &'static str,
    config: ServeConfig,
}

/// The flagship acceptance workload: 16 tenants × 8 cameras × 10 fps
/// under faults. `capacity_cores` is sized so the ladder has to work —
/// roughly half the fleet fits untouched and the rest is degraded.
fn flagship() -> ServeConfig {
    ServeConfig {
        tenants: 16,
        cameras_per_tenant: 8,
        fps: 10.0,
        duration_s: 12.0,
        capacity_cores: 24.0,
        seed: SEED,
        train_s: 15.0,
        faults: FaultModel {
            keyframe_loss: 0.1,
            dropout_per_horizon: 0.05,
            rejoin_per_horizon: 0.3,
            ..FaultModel::none()
        },
        ..ServeConfig::default()
    }
}

fn mixes() -> Vec<Mix> {
    vec![
        Mix {
            name: "light",
            config: ServeConfig {
                tenants: 4,
                cameras_per_tenant: 4,
                duration_s: 10.0,
                capacity_cores: 12.0,
                train_s: 15.0,
                seed: SEED,
                ..ServeConfig::default()
            },
        },
        Mix {
            name: "loaded",
            config: ServeConfig {
                tenants: 8,
                cameras_per_tenant: 8,
                duration_s: 10.0,
                capacity_cores: 16.0,
                train_s: 15.0,
                seed: SEED,
                ..ServeConfig::default()
            },
        },
        Mix {
            name: "flagship-faulted",
            config: flagship(),
        },
    ]
}

#[derive(Serialize, Deserialize)]
struct MixRow {
    name: String,
    tenants: usize,
    cameras_per_tenant: usize,
    fps: f64,
    capacity_cores: f64,
    admitted: usize,
    shed_redundancy: usize,
    degraded: usize,
    rejected: usize,
    admitted_load_cores: f64,
    captured: u64,
    processed: u64,
    queue_dropped: u64,
    policy_skipped: u64,
    drop_rate: f64,
    e2e_p50_ms: f64,
    e2e_p99_ms: f64,
    core_utilization: f64,
    max_lane_depth: usize,
}

#[derive(Serialize, Deserialize)]
struct Report {
    seed: u64,
    /// Flagship end-to-end p99 latency: the regression-gated headline.
    headline_p99_ms: f64,
    /// Flagship combined drop rate, also gated.
    headline_drop_rate: f64,
    mixes: Vec<MixRow>,
}

fn row(name: &str, report: &ServeReport) -> MixRow {
    let max_lane_depth = report
        .tenants
        .iter()
        .map(|t| t.max_lane_depth)
        .max()
        .unwrap_or(0);
    MixRow {
        name: name.to_string(),
        tenants: report.config.tenants,
        cameras_per_tenant: report.config.cameras_per_tenant,
        fps: report.config.fps,
        capacity_cores: report.config.capacity_cores,
        admitted: report.decisions.admitted,
        shed_redundancy: report.decisions.shed_redundancy,
        degraded: report.decisions.degraded,
        rejected: report.decisions.rejected,
        admitted_load_cores: report.admitted_load_cores,
        captured: report.captured,
        processed: report.processed,
        queue_dropped: report.queue_dropped,
        policy_skipped: report.policy_skipped,
        drop_rate: report.drop_rate,
        e2e_p50_ms: report.e2e_ms.p50,
        e2e_p99_ms: report.e2e_ms.p99,
        core_utilization: report.core_utilization,
        max_lane_depth,
    }
}

fn check_against(report: &Report, path: &str) -> Result<(), String> {
    let raw =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let baseline: Report =
        serde_json::from_str(&raw).map_err(|e| format!("cannot parse baseline {path}: {e}"))?;
    let ceiling = baseline.headline_p99_ms * CHECK_TOLERANCE;
    if report.headline_p99_ms > ceiling {
        return Err(format!(
            "flagship e2e p99 regressed: {:.1} ms > {:.1} ms (baseline {:.1} ms × {CHECK_TOLERANCE})",
            report.headline_p99_ms, ceiling, baseline.headline_p99_ms
        ));
    }
    let drop_ceiling = baseline.headline_drop_rate + DROP_SLACK;
    if report.headline_drop_rate > drop_ceiling {
        return Err(format!(
            "flagship drop rate regressed: {:.3} > {:.3} (baseline {:.3} + {DROP_SLACK})",
            report.headline_drop_rate, drop_ceiling, baseline.headline_drop_rate
        ));
    }
    println!(
        "check ok: flagship p99 {:.1} ms <= {:.1} ms, drop rate {:.3} <= {:.3}",
        report.headline_p99_ms, ceiling, report.headline_drop_rate, drop_ceiling
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--check requires a baseline path");
                std::process::exit(2);
            })
            .clone()
    });

    let mut rows = Vec::new();
    let mut table = TextTable::new(vec![
        "mix",
        "tenants×cams",
        "capacity",
        "admit/shed/deg/rej",
        "drop rate",
        "e2e p99 (ms)",
        "util",
    ]);
    for mix in mixes() {
        let report = run_serve(&mix.config);
        for t in &report.tenants {
            assert!(t.max_lane_depth <= 1, "lane depth must stay bounded");
        }
        let r = row(mix.name, &report);
        table.row(vec![
            r.name.clone(),
            format!("{}×{}", r.tenants, r.cameras_per_tenant),
            format!("{:.0}", r.capacity_cores),
            format!(
                "{}/{}/{}/{}",
                r.admitted, r.shed_redundancy, r.degraded, r.rejected
            ),
            format!("{:.1}%", r.drop_rate * 100.0),
            format!("{:.1}", r.e2e_p99_ms),
            format!("{:.0}%", r.core_utilization * 100.0),
        ]);
        rows.push(r);
    }

    let headline = rows.last().expect("sweep has mixes");
    let report = Report {
        seed: SEED,
        headline_p99_ms: headline.e2e_p99_ms,
        headline_drop_rate: headline.drop_rate,
        mixes: rows,
    };

    println!("Multi-tenant serving sweep (virtual clock, deterministic)\n");
    println!("{table}");
    println!(
        "headline: flagship p99 {:.1} ms, drop rate {:.1}%",
        report.headline_p99_ms,
        report.headline_drop_rate * 100.0
    );

    let path = write_json("BENCH_serve", &report);
    println!("\nwrote {}", path.display());

    if let Some(baseline) = check_path {
        if let Err(msg) = check_against(&report, &baseline) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
