//! Multi-tenant serving benchmark: the `mvs serve` event loop swept over
//! tenant mixes on the city generator, written to
//! `results/BENCH_serve.json`.
//!
//! Each mix runs [`run_serve`]: N independently seeded city tenants
//! multiplexed onto one provisioned compute pool through depth-1
//! latest-frame-wins ingest lanes, with the admission ladder (shed
//! redundancy → frame thinning → reject) squeezing the aggregate modeled
//! load under the capacity budget. Per mix the bin reports admission
//! decisions, the end-to-end p99 latency (capture → completion, queueing
//! included), the combined drop rate (backpressure + policy thinning),
//! and pool utilization.
//!
//! Every number here is *modeled* — the event loop runs on a virtual
//! clock and is a deterministic function of the config — so the results
//! are bitwise reproducible on any host and the regression gate can be
//! tight.
//!
//! The flagship mix is the ISSUE 7 acceptance workload: 16 tenants × 8
//! cameras at 10 fps under the fault model (key-frame loss and camera
//! dropout), which must complete with zero panics and bounded lanes.
//!
//! A threads × tenants throughput sweep (ISSUE 10) measures how the
//! persistent executor scales the serve layer. Per tenant count the
//! workload runs at one thread with [`mvs_exec`] profiling on (best of
//! [`SWEEP_REPS`] repetitions — noise only ever lowers the ratio); the
//! profile records every pool region's per-task durations, and
//! `makespan(T) = wall(1) − work + modeled(T)` projects the wall-clock
//! time at T lanes (contiguous-chunk schedule, the executor's actual
//! policy). Modeling from a profiled single-thread run — the same
//! technique as `bench_fleet`'s efficiency gate — keeps the number a
//! deterministic property of the schedule shape rather than of the CI
//! machine's core count. A separate *real* 8-thread run asserts report
//! equality against the 1-thread run, so the modeled arm can never hide
//! a determinism break.
//!
//! `--check <baseline.json>` compares the flagship p99 and drop rate
//! against a checked-in baseline, holds the flagship 8-thread modeled
//! speedup above an absolute 3x floor (plus a baseline-relative band),
//! and exits non-zero on regression — the CI serving gate.
//!
//! Run with `cargo run --release -p mvs-bench --bin bench_serve`.

use mvs_bench::{write_json, SEED};
use mvs_metrics::TextTable;
use mvs_sim::{run_serve, FaultModel, ServeConfig, ServeReport};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Accept up to 20% regression of the flagship p99 before failing. The
/// metric is deterministic, so this headroom absorbs intentional model
/// retuning, not measurement noise.
const CHECK_TOLERANCE: f64 = 1.20;
/// Accept at most this much additional drop rate over the baseline.
const DROP_SLACK: f64 = 0.05;
/// Absolute floor on the flagship 8-thread modeled speedup: parallel
/// serving must model at least this much throughput over one thread on
/// the 16-tenant mix.
const SERVE_SPEEDUP_FLOOR: f64 = 3.0;
/// Baseline-relative tolerance for the modeled speedup (the schedule
/// shape is deterministic, but task durations are measured, so the ratio
/// carries some machine noise).
const SPEEDUP_TOLERANCE: f64 = 1.15;

/// One serving mix of the sweep.
struct Mix {
    name: &'static str,
    config: ServeConfig,
}

/// The flagship acceptance workload: 16 tenants × 8 cameras × 10 fps
/// under faults. `capacity_cores` is sized so the ladder has to work —
/// roughly half the fleet fits untouched and the rest is degraded.
fn flagship() -> ServeConfig {
    ServeConfig {
        tenants: 16,
        cameras_per_tenant: 8,
        fps: 10.0,
        duration_s: 12.0,
        capacity_cores: 24.0,
        seed: SEED,
        train_s: 15.0,
        faults: FaultModel {
            keyframe_loss: 0.1,
            dropout_per_horizon: 0.05,
            rejoin_per_horizon: 0.3,
            ..FaultModel::none()
        },
        ..ServeConfig::default()
    }
}

fn mixes() -> Vec<Mix> {
    vec![
        Mix {
            name: "light",
            config: ServeConfig {
                tenants: 4,
                cameras_per_tenant: 4,
                duration_s: 10.0,
                capacity_cores: 12.0,
                train_s: 15.0,
                seed: SEED,
                ..ServeConfig::default()
            },
        },
        Mix {
            name: "loaded",
            config: ServeConfig {
                tenants: 8,
                cameras_per_tenant: 8,
                duration_s: 10.0,
                capacity_cores: 16.0,
                train_s: 15.0,
                seed: SEED,
                ..ServeConfig::default()
            },
        },
        Mix {
            name: "flagship-faulted",
            config: flagship(),
        },
    ]
}

#[derive(Serialize, Deserialize)]
struct MixRow {
    name: String,
    tenants: usize,
    cameras_per_tenant: usize,
    fps: f64,
    capacity_cores: f64,
    admitted: usize,
    shed_redundancy: usize,
    degraded: usize,
    rejected: usize,
    admitted_load_cores: f64,
    captured: u64,
    processed: u64,
    queue_dropped: u64,
    policy_skipped: u64,
    drop_rate: f64,
    e2e_p50_ms: f64,
    e2e_p99_ms: f64,
    core_utilization: f64,
    max_lane_depth: usize,
}

/// One cell of the threads × tenants throughput sweep.
#[derive(Serialize, Deserialize)]
struct SweepCell {
    tenants: usize,
    threads: usize,
    /// Projected wall-clock seconds for the whole serve run at this lane
    /// count (measured exactly at 1 thread; modeled from the profiled
    /// per-task durations above it).
    modeled_makespan_s: f64,
    /// Processed frames over the modeled makespan.
    modeled_fps: f64,
    /// `makespan(1) / makespan(threads)` within this tenant row.
    modeled_speedup: f64,
    /// End-to-end p99 on the virtual clock — thread-invariant by the
    /// determinism contract, repeated per cell as a sanity anchor.
    e2e_p99_ms: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    seed: u64,
    /// Flagship end-to-end p99 latency: the regression-gated headline.
    headline_p99_ms: f64,
    /// Flagship combined drop rate, also gated.
    headline_drop_rate: f64,
    mixes: Vec<MixRow>,
    /// Threads × tenants modeled throughput sweep.
    #[serde(default)]
    throughput: Vec<SweepCell>,
    /// The gated cell: flagship tenants at 8 modeled lanes.
    #[serde(default)]
    flagship_modeled_speedup_8: f64,
}

fn row(name: &str, report: &ServeReport) -> MixRow {
    let max_lane_depth = report
        .tenants
        .iter()
        .map(|t| t.max_lane_depth)
        .max()
        .unwrap_or(0);
    MixRow {
        name: name.to_string(),
        tenants: report.config.tenants,
        cameras_per_tenant: report.config.cameras_per_tenant,
        fps: report.config.fps,
        capacity_cores: report.config.capacity_cores,
        admitted: report.decisions.admitted,
        shed_redundancy: report.decisions.shed_redundancy,
        degraded: report.decisions.degraded,
        rejected: report.decisions.rejected,
        admitted_load_cores: report.admitted_load_cores,
        captured: report.captured,
        processed: report.processed,
        queue_dropped: report.queue_dropped,
        policy_skipped: report.policy_skipped,
        drop_rate: report.drop_rate,
        e2e_p50_ms: report.e2e_ms.p50,
        e2e_p99_ms: report.e2e_ms.p99,
        core_utilization: report.core_utilization,
        max_lane_depth,
    }
}

/// Profiled 1-thread repetitions per sweep row. Timing noise can only
/// *inflate* the serial residue (`wall − work`) and the measured chunk
/// sums, so every repetition's modeled speedup is a lower bound on the
/// noise-free value; the sweep keeps the repetition that bounds tightest
/// — the ratio-metric analogue of the min-of-reps wall-clock estimator
/// used everywhere else in this crate.
const SWEEP_REPS: usize = 3;

/// Runs the threads × tenants sweep. Per tenant count: the best of
/// [`SWEEP_REPS`] profiled 1-thread runs produces the four modeled
/// cells, and one real 8-thread run is compared against the 1-thread
/// report (modulo the embedded config) so the modeled numbers always
/// ride on a verified-deterministic parallelization.
fn throughput_sweep() -> (Vec<SweepCell>, f64) {
    let mut cells = Vec::new();
    let mut flagship_speedup_8 = 0.0;
    for tenants in [4usize, 16] {
        // The flagship shape, scaled: capacity tracks the tenant count so
        // the ladder stresses admission identically per row. The sweep
        // turns on the compute-only parallel-solver knobs (sharded key
        // frames, pipelined uplink) — schedules and reports are identical
        // by contract, but central solves route through the pool, so the
        // model sees the full parallel serving stack.
        let config = ServeConfig {
            tenants,
            capacity_cores: 24.0 * tenants as f64 / 16.0,
            threads: 1,
            shard_solver: true,
            pipelined: true,
            ..flagship()
        };
        let exec = mvs_exec::pool();
        let mut reference = None;
        let mut best: Option<(f64, f64, mvs_exec::ExecProfile)> = None;
        for _ in 0..SWEEP_REPS {
            exec.profile_start();
            let start = Instant::now();
            reference = Some(run_serve(&config));
            let wall_s = start.elapsed().as_secs_f64();
            let profile = exec.profile_stop();
            let span_1 = (wall_s - profile.work_s + profile.modeled_s[0]).max(1e-9);
            let span_8 = (wall_s - profile.work_s + profile.modeled_s[3]).max(1e-9);
            let speedup_8 = span_1 / span_8;
            if best.as_ref().is_none_or(|(s, ..)| speedup_8 > *s) {
                best = Some((speedup_8, wall_s, profile));
            }
        }
        let reference = reference.expect("SWEEP_REPS >= 1");
        let (_, wall_s, profile) = best.expect("SWEEP_REPS >= 1");

        let parallel = run_serve(&ServeConfig {
            threads: 8,
            ..config.clone()
        });
        let mut normalized = parallel.clone();
        normalized.config.threads = config.threads;
        assert_eq!(
            reference, normalized,
            "{tenants}-tenant serve diverged between 1 and 8 threads"
        );

        let makespan_1 = (wall_s - profile.work_s + profile.modeled_s[0]).max(1e-9);
        for (i, &threads) in mvs_exec::MODELED_LANES.iter().enumerate() {
            let makespan = (wall_s - profile.work_s + profile.modeled_s[i]).max(1e-9);
            let speedup = makespan_1 / makespan;
            if tenants == 16 && threads == 8 {
                flagship_speedup_8 = speedup;
            }
            cells.push(SweepCell {
                tenants,
                threads,
                modeled_makespan_s: makespan,
                modeled_fps: reference.processed as f64 / makespan,
                modeled_speedup: speedup,
                e2e_p99_ms: reference.e2e_ms.p99,
            });
        }
    }
    (cells, flagship_speedup_8)
}

fn check_against(report: &Report, path: &str) -> Result<(), String> {
    let raw =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let baseline: Report =
        serde_json::from_str(&raw).map_err(|e| format!("cannot parse baseline {path}: {e}"))?;
    let ceiling = baseline.headline_p99_ms * CHECK_TOLERANCE;
    if report.headline_p99_ms > ceiling {
        return Err(format!(
            "flagship e2e p99 regressed: {:.1} ms > {:.1} ms (baseline {:.1} ms × {CHECK_TOLERANCE})",
            report.headline_p99_ms, ceiling, baseline.headline_p99_ms
        ));
    }
    let drop_ceiling = baseline.headline_drop_rate + DROP_SLACK;
    if report.headline_drop_rate > drop_ceiling {
        return Err(format!(
            "flagship drop rate regressed: {:.3} > {:.3} (baseline {:.3} + {DROP_SLACK})",
            report.headline_drop_rate, drop_ceiling, baseline.headline_drop_rate
        ));
    }
    if report.flagship_modeled_speedup_8 < SERVE_SPEEDUP_FLOOR {
        return Err(format!(
            "serve scaling regressed: flagship 8-thread modeled speedup {:.2}x fell below the \
             {SERVE_SPEEDUP_FLOOR}x floor",
            report.flagship_modeled_speedup_8
        ));
    }
    if baseline.flagship_modeled_speedup_8 > 0.0
        && report.flagship_modeled_speedup_8
            < baseline.flagship_modeled_speedup_8 / SPEEDUP_TOLERANCE
    {
        return Err(format!(
            "serve scaling regressed: flagship 8-thread modeled speedup {:.2}x fell below \
             baseline {:.2}x / {SPEEDUP_TOLERANCE}",
            report.flagship_modeled_speedup_8, baseline.flagship_modeled_speedup_8
        ));
    }
    println!(
        "check ok: flagship p99 {:.1} ms <= {:.1} ms, drop rate {:.3} <= {:.3}, \
         modeled speedup(8) {:.2}x >= {SERVE_SPEEDUP_FLOOR}x",
        report.headline_p99_ms,
        ceiling,
        report.headline_drop_rate,
        drop_ceiling,
        report.flagship_modeled_speedup_8
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--check requires a baseline path");
                std::process::exit(2);
            })
            .clone()
    });

    let mut rows = Vec::new();
    let mut table = TextTable::new(vec![
        "mix",
        "tenants×cams",
        "capacity",
        "admit/shed/deg/rej",
        "drop rate",
        "e2e p99 (ms)",
        "util",
    ]);
    for mix in mixes() {
        let report = run_serve(&mix.config);
        for t in &report.tenants {
            assert!(t.max_lane_depth <= 1, "lane depth must stay bounded");
        }
        let r = row(mix.name, &report);
        table.row(vec![
            r.name.clone(),
            format!("{}×{}", r.tenants, r.cameras_per_tenant),
            format!("{:.0}", r.capacity_cores),
            format!(
                "{}/{}/{}/{}",
                r.admitted, r.shed_redundancy, r.degraded, r.rejected
            ),
            format!("{:.1}%", r.drop_rate * 100.0),
            format!("{:.1}", r.e2e_p99_ms),
            format!("{:.0}%", r.core_utilization * 100.0),
        ]);
        rows.push(r);
    }

    let (throughput, flagship_modeled_speedup_8) = throughput_sweep();

    let headline = rows.last().expect("sweep has mixes");
    let report = Report {
        seed: SEED,
        headline_p99_ms: headline.e2e_p99_ms,
        headline_drop_rate: headline.drop_rate,
        mixes: rows,
        throughput,
        flagship_modeled_speedup_8,
    };

    println!("Multi-tenant serving sweep (virtual clock, deterministic)\n");
    println!("{table}");
    println!(
        "headline: flagship p99 {:.1} ms, drop rate {:.1}%",
        report.headline_p99_ms,
        report.headline_drop_rate * 100.0
    );

    let mut sweep_table = TextTable::new(vec![
        "tenants",
        "threads",
        "makespan (s)",
        "frames/s",
        "speedup",
        "p99 (ms)",
    ]);
    for c in &report.throughput {
        sweep_table.row(vec![
            c.tenants.to_string(),
            c.threads.to_string(),
            format!("{:.2}", c.modeled_makespan_s),
            format!("{:.0}", c.modeled_fps),
            format!("{:.2}x", c.modeled_speedup),
            format!("{:.1}", c.e2e_p99_ms),
        ]);
    }
    println!("\nThreads × tenants modeled throughput (profiled 1-thread run)\n");
    println!("{sweep_table}");
    println!(
        "flagship modeled speedup at 8 threads: {:.2}x",
        report.flagship_modeled_speedup_8
    );

    let path = write_json("BENCH_serve", &report);
    println!("\nwrote {}", path.display());

    if let Some(baseline) = check_path {
        if let Err(msg) = check_against(&report, &baseline) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
