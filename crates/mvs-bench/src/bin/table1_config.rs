//! Table I — hardware configuration for each scenario, together with the
//! profiled latency tables the scheduler consumes (the offline YOLO
//! profiling step of Sec. IV-A3).
//!
//! Run with `cargo run --release -p mvs-bench --bin table1_config`.

use mvs_bench::{write_json, SCENARIOS};
use mvs_geometry::SizeClass;
use mvs_metrics::TextTable;
use mvs_sim::Scenario;
use mvs_vision::{DeviceKind, LatencyProfile};
use serde::Serialize;

#[derive(Serialize)]
struct ScenarioRow {
    scenario: String,
    cameras: usize,
    devices: Vec<String>,
}

#[derive(Serialize)]
struct ProfileRow {
    device: String,
    full_frame_ms: f64,
    batch_limits: Vec<usize>,
    batch_latencies_ms: Vec<f64>,
}

#[derive(Serialize)]
struct Report {
    scenarios: Vec<ScenarioRow>,
    profiles: Vec<ProfileRow>,
}

fn main() {
    println!("Table I — edge device configuration per scenario\n");
    let mut table = TextTable::new(vec!["scenario", "cameras", "devices"]);
    let mut scenarios = Vec::new();
    for kind in SCENARIOS {
        let scenario = Scenario::new(kind);
        let devices: Vec<String> = scenario.devices.iter().map(|d| d.to_string()).collect();
        table.row(vec![
            kind.to_string(),
            scenario.num_cameras().to_string(),
            devices.join(", "),
        ]);
        scenarios.push(ScenarioRow {
            scenario: kind.to_string(),
            cameras: scenario.num_cameras(),
            devices,
        });
    }
    println!("{table}");
    println!("Paper's Table I: S1 = 2x Xavier + 2x TX2 + 1x Nano, S2 = Xavier + Nano,");
    println!("S3 = Xavier + TX2 + Nano — matched exactly.\n");

    println!("Profiled YOLO latency tables (the Sec. IV-A3 offline profiling)\n");
    let mut profile_table = TextTable::new(vec![
        "device",
        "full frame",
        "64 (limit)",
        "128 (limit)",
        "256 (limit)",
        "512 (limit)",
    ]);
    let mut profiles = Vec::new();
    for device in DeviceKind::ALL {
        let p = LatencyProfile::for_device(device);
        let mut row = vec![device.to_string(), format!("{:.0} ms", p.full_frame_ms())];
        for size in SizeClass::ALL {
            row.push(format!(
                "{:.0} ms (x{})",
                p.batch_latency_ms(size),
                p.batch_limit(size)
            ));
        }
        profile_table.row(row);
        profiles.push(ProfileRow {
            device: device.to_string(),
            full_frame_ms: p.full_frame_ms(),
            batch_limits: SizeClass::ALL.iter().map(|&s| p.batch_limit(s)).collect(),
            batch_latencies_ms: SizeClass::ALL
                .iter()
                .map(|&s| p.batch_latency_ms(s))
                .collect(),
        });
    }
    println!("{profile_table}");
    let path = write_json(
        "table1_config",
        &Report {
            scenarios,
            profiles,
        },
    );
    println!("wrote {}", path.display());
}
