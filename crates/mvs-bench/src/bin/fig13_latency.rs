//! Fig. 13 — per-frame YOLO inference latency on the slowest camera, for
//! Full / BALB-Ind / SP / BALB across scenarios S1–S3, plus the paper's
//! headline multiplicative speedups. Replicated over three seeds
//! (mean ± std).
//!
//! Run with `cargo run --release -p mvs-bench --bin fig13_latency`.

use mvs_bench::{experiment_config, parallel_map, write_json, REPLICATIONS, SCENARIOS, SEED};
use mvs_metrics::{sparkline_fit, Running, TextTable};
use mvs_sim::{run_pipeline, Algorithm, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    algorithm: String,
    mean_latency_ms: f64,
    std_latency_ms: f64,
    speedup_vs_full: f64,
    recall: f64,
}

fn main() {
    let algorithms = [
        Algorithm::Full,
        Algorithm::BalbInd,
        Algorithm::StaticPartition,
        Algorithm::Balb,
    ];
    let mut rows: Vec<Row> = Vec::new();
    let mut spark_lines = Vec::new();
    let mut table = TextTable::new(vec![
        "scenario",
        "algorithm",
        "latency (ms)",
        "speedup vs Full",
    ]);
    // Fan the whole (scenario × algorithm × seed) sweep across threads —
    // every run is independent — then aggregate back in sweep order.
    let jobs: Vec<_> = SCENARIOS
        .iter()
        .flat_map(|&kind| {
            algorithms.iter().flat_map(move |&algorithm| {
                (0..REPLICATIONS).map(move |rep| (kind, algorithm, rep))
            })
        })
        .collect();
    let runs = parallel_map(jobs, |&(kind, algorithm, rep)| {
        let mut config = experiment_config(algorithm);
        config.seed = SEED + rep as u64;
        run_pipeline(&Scenario::new(kind), &config)
    });
    let mut runs = runs.into_iter();
    for kind in SCENARIOS {
        let mut full_latency = None;
        for algorithm in algorithms {
            let mut latency = Running::new();
            let mut recall = Running::new();
            for rep in 0..REPLICATIONS {
                let result = runs.next().expect("one run per job");
                latency.push(result.mean_latency_ms);
                recall.push(result.recall);
                if rep == 0 && algorithm == Algorithm::Balb {
                    spark_lines.push(format!(
                        "{kind} BALB per-frame latency: {}",
                        sparkline_fit(result.latency.samples_ms(), 60)
                    ));
                }
            }
            let full = *full_latency.get_or_insert(latency.mean());
            let speedup = full / latency.mean();
            table.row(vec![
                kind.to_string(),
                algorithm.to_string(),
                latency.format(1),
                format!("{speedup:.2}x"),
            ]);
            rows.push(Row {
                scenario: kind.to_string(),
                algorithm: algorithm.to_string(),
                mean_latency_ms: latency.mean(),
                std_latency_ms: latency.sample_std(),
                speedup_vs_full: speedup,
                recall: recall.mean(),
            });
        }
    }
    let mut sp_over_balb = Vec::new();
    for chunk in rows.chunks(algorithms.len()) {
        let sp = chunk.iter().find(|r| r.algorithm == "SP").expect("SP row");
        let balb = chunk
            .iter()
            .find(|r| r.algorithm == "BALB")
            .expect("BALB row");
        sp_over_balb.push(sp.mean_latency_ms / balb.mean_latency_ms);
    }
    println!(
        "Fig. 13 — per-frame inference latency (slowest camera, horizon mean, {REPLICATIONS} seeds)\n"
    );
    println!("{table}");
    for line in &spark_lines {
        println!("{line}");
    }
    let avg_ratio = sp_over_balb.iter().sum::<f64>() / sp_over_balb.len() as f64;
    println!(
        "\naverage SP latency / BALB latency across scenarios: {avg_ratio:.2}x \
         (paper reports an average 1.88x reduction over SP)"
    );
    println!("Paper reference speedups (BALB vs Full): S1 6.85x, S2 6.18x, S3 2.45x");
    let path = write_json("fig13_latency", &rows);
    println!("\nwrote {}", path.display());
}
