//! Table II — per-frame latency overhead breakdown of the BALB framework:
//! central stage (association + scheduling + camera↔scheduler messaging,
//! amortized over the horizon), tracking, distributed-stage BALB, and
//! batch assembly.
//!
//! The central and distributed stages are *measured* from this
//! implementation's wall-clock; tracking and batching are modeled (the
//! real optical flow and GPU packing are simulated — see DESIGN.md).
//!
//! Run with `cargo run --release -p mvs-bench --bin table2_overhead`.

use mvs_bench::{experiment_config, write_json, SCENARIOS};
use mvs_metrics::TextTable;
use mvs_sim::{run_pipeline, Algorithm, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    central_ms: f64,
    tracking_ms: f64,
    distributed_ms: f64,
    batching_ms: f64,
    total_ms: f64,
}

fn main() {
    let mut rows = Vec::new();
    let mut table = TextTable::new(vec![
        "scenario",
        "central",
        "tracking",
        "distributed",
        "batching",
        "total",
    ]);
    for kind in SCENARIOS {
        let scenario = Scenario::new(kind);
        let result = run_pipeline(&scenario, &experiment_config(Algorithm::Balb));
        let oh = result.overhead_mean;
        table.row(vec![
            kind.to_string(),
            format!("{:.2} ms", oh.central_ms),
            format!("{:.2} ms", oh.tracking_ms),
            format!("{:.3} ms", oh.distributed_ms),
            format!("{:.2} ms", oh.batching_ms),
            format!("{:.2} ms", oh.total_ms()),
        ]);
        rows.push(Row {
            scenario: kind.to_string(),
            central_ms: oh.central_ms,
            tracking_ms: oh.tracking_ms,
            distributed_ms: oh.distributed_ms,
            batching_ms: oh.batching_ms,
            total_ms: oh.total_ms(),
        });
    }
    println!("Table II — per-frame overhead breakdown (BALB)\n");
    println!("{table}");
    println!("Paper reference: central 1.1–2.6 ms, tracking 11.6–21.4 ms,");
    println!("distributed 0.08–0.22 ms, batching 7.5–19.9 ms, total 29.1–35.8 ms.");
    let path = write_json("table2_overhead", &rows);
    println!("\nwrote {}", path.display());
}
