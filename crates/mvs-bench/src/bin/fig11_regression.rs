//! Fig. 11 — cross-camera *regression module* comparison.
//!
//! For every scenario: train KNN / homography / linear-regression / RANSAC
//! models mapping bounding boxes between camera pairs (first half of the
//! labels), and report the mean absolute error of the predicted box
//! coordinates on the second half, pooled over all ordered pairs.
//!
//! Run with `cargo run --release -p mvs-bench --bin fig11_regression`.

use mvs_bench::{regression_dataset, write_json, SCENARIOS, SEED, TRAIN_S};
use mvs_geometry::Point2;
use mvs_metrics::TextTable;
use mvs_ml::{
    estimate_homography, train_test_split, KnnRegressor, LinearRegression, Ransac, RansacConfig,
    Regressor,
};
use mvs_sim::{CorrespondenceData, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    model: String,
    mae_px: f64,
}

/// Accumulates |error| over box coordinates.
#[derive(Default)]
struct MaeAcc {
    total: f64,
    count: usize,
}

impl MaeAcc {
    fn add(&mut self, pred: &[f64], truth: &[f64]) {
        for (p, t) in pred.iter().zip(truth) {
            self.total += (p - t).abs();
            self.count += 1;
        }
    }
    fn mae(&self) -> f64 {
        self.total / self.count.max(1) as f64
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut table = TextTable::new(vec!["scenario", "model", "MAE (px)"]);
    for kind in SCENARIOS {
        let scenario = Scenario::new(kind);
        let mut rng = ChaCha8Rng::seed_from_u64(SEED);
        let data = CorrespondenceData::collect(&scenario, 2.0 * TRAIN_S, 2, &mut rng);
        let mut acc: Vec<(&'static str, MaeAcc)> = vec![
            ("KNN", MaeAcc::default()),
            ("Homography", MaeAcc::default()),
            ("LinearRegression", MaeAcc::default()),
            ("RANSAC", MaeAcc::default()),
        ];
        for samples in data.pairs.values() {
            let (xs, ys) = regression_dataset(samples);
            if xs.len() < 40 {
                continue; // not enough shared observations on this pair
            }
            let Ok((xtr, ytr, xte, yte)) = train_test_split(&xs, &ys, 0.5) else {
                continue;
            };
            // KNN.
            let knn = KnnRegressor::fit(3, &xtr, &ytr).expect("valid training data");
            for (x, y) in xte.iter().zip(&yte) {
                acc[0].1.add(&knn.predict(x), y);
            }
            // Homography on box centres (mapped through corner transport).
            let src_pts: Vec<Point2> = xtr
                .iter()
                .map(|b| Point2::new((b[0] + b[2]) / 2.0, (b[1] + b[3]) / 2.0))
                .collect();
            let dst_pts: Vec<Point2> = ytr
                .iter()
                .map(|b| Point2::new((b[0] + b[2]) / 2.0, (b[1] + b[3]) / 2.0))
                .collect();
            if let Ok(h) = estimate_homography(&src_pts, &dst_pts) {
                for (x, y) in xte.iter().zip(&yte) {
                    let corners = [Point2::new(x[0], x[1]), Point2::new(x[2], x[3])];
                    let mapped: Option<Vec<Point2>> = corners.iter().map(|&c| h.apply(c)).collect();
                    if let Some(m) = mapped {
                        acc[1].1.add(&[m[0].x, m[0].y, m[1].x, m[1].y], y);
                    }
                }
            }
            // Linear regression.
            let lin = LinearRegression::fit(&xtr, &ytr).expect("valid training data");
            for (x, y) in xte.iter().zip(&yte) {
                acc[2].1.add(&lin.predict(x), y);
            }
            // RANSAC.
            let ransac =
                Ransac::fit(RansacConfig::default(), &xtr, &ytr).expect("valid training data");
            for (x, y) in xte.iter().zip(&yte) {
                acc[3].1.add(&ransac.predict(x), y);
            }
        }
        for (name, a) in acc {
            table.row(vec![
                kind.to_string(),
                name.to_string(),
                format!("{:.1}", a.mae()),
            ]);
            rows.push(Row {
                scenario: kind.to_string(),
                model: name.to_string(),
                mae_px: a.mae(),
            });
        }
    }
    println!("Fig. 11 — cross-camera box regression, MAE by model\n");
    println!("{table}");
    println!("Paper shape: KNN lowest in S1/S3, competitive in S2; homography much worse.");
    let path = write_json("fig11_regression", &rows);
    println!("\nwrote {}", path.display());
}
