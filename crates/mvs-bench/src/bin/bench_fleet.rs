//! City-scale fleet benchmark: sharded vs monolithic central scheduling,
//! swept over fleet size × thread count, written to
//! `results/BENCH_fleet.json`.
//!
//! For each procedural city fleet ([`Scenario::city`], at rush-hour
//! traffic intensity) the bin snapshots a warmed world into one key-frame
//! [`MvsProblem`], verifies that the sharded schedule is bitwise identical
//! to `balb_central` (instance coverage plans are always exact), then
//! times the monolithic central solve and profiles the sharded path with
//! [`balb_sharded_profiled`], which breaks one solve into the per-object
//! keying pass (parallel over object chunks), the per-shard solves
//! (parallel across workers), and the serial scatter/merge residue.
//!
//! Thread scaling is reported two ways. The *modeled* time at `T` threads
//! divides the keying pass by `T`, schedules the measured per-shard times
//! onto `T` workers with an LPT list scheduler, and adds the serial
//! residue — a machine-portable model that is meaningful even on the
//! single-core CI hosts this bin must run on. From it the bin derives the
//! strong-scaling *speedup* (modeled 1-thread time over modeled
//! `T`-thread time, the same definition `bench_parallel` uses) and the
//! *vs central* ratio (monolithic solve time over modeled `T`-thread
//! time). The *measured* wall-clock of `balb_sharded_threaded` at each
//! `T` is recorded alongside, informationally (it only beats serial on
//! real multi-core hosts).
//!
//! A third, *pipelined* arm models `balb_sharded_pipelined`, which merges
//! each shard's disjoint output columns as the shard completes instead of
//! waiting for the whole wave: the merge leaves the serial residue and
//! hides behind the shard-solve makespan, so the modeled time is
//! `keying/T + max(makespan, merge) + (serial - merge)`. At one thread it
//! solves inline and the model collapses to the sequential one. The
//! 8-thread pipelined strong-scaling *efficiency* on the largest fleet is
//! the second regression-gated headline.
//!
//! A short traced pipeline run on a small city fleet records how the
//! per-stage time shares shift once the sharded path is on.
//!
//! `--check <baseline.json>` compares the headline (8-thread modeled
//! speedup on the largest fleet) against a checked-in baseline and exits
//! non-zero on a >15% regression — the CI perf gate.
//!
//! Run with `cargo run --release -p mvs-bench --bin bench_fleet`.

use mvs_bench::{write_json, SEED};
use mvs_core::{
    balb_central, balb_sharded, balb_sharded_pipelined, balb_sharded_profiled,
    balb_sharded_threaded, BalbSchedule, CameraId, CameraInfo, MvsProblem, ObjectId, ObjectInfo,
    OverlapGraph, ShardPlan,
};
use mvs_geometry::SizeClass;
use mvs_metrics::TextTable;
use mvs_sim::{run_pipeline_traced, Algorithm, CityConfig, PipelineConfig, Scenario};
use mvs_vision::LatencyProfile;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

const FLEETS: [usize; 3] = [64, 128, 256];
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;
/// Extra repetitions for the component-wise profiled solve, whose
/// microsecond-scale components are noisier than end-to-end timings.
/// Each rep is a sub-millisecond solve, so a large count costs nothing
/// next to the world warm-up but makes the per-component minima — and
/// hence the gated headline — stable on busy CI hosts.
const PROFILE_REPS: usize = 200;
/// Rush-hour traffic: a city key frame at commute load carries thousands
/// of concurrent objects, which is the regime where the monolithic solve
/// hurts and sharding pays. (At light load every solve is tens of
/// microseconds and there is nothing worth parallelizing.)
const INTENSITY: f64 = 10.0;
/// Accept up to 15% regression of the headline speedup before failing.
const CHECK_TOLERANCE: f64 = 1.15;
/// Absolute floor on the 8-thread pipelined strong-scaling efficiency of
/// the largest fleet, independent of the checked-in baseline: the whole
/// point of overlapping the merge with the uplink leg is to keep the
/// sharded solve usefully parallel, and below 70% the overlap is no
/// longer earning its complexity.
const PIPELINED_EFFICIENCY_FLOOR: f64 = 0.70;

#[derive(Serialize, Deserialize)]
struct ThreadRow {
    threads: usize,
    /// Modeled sharded solve at this thread count: keying / T plus the
    /// LPT-scheduled makespan of the measured per-shard solve times plus
    /// the serial residue, in milliseconds.
    modeled_ms: f64,
    /// Strong-scaling speedup of the sharded path itself:
    /// modeled_ms(1 thread) / modeled_ms(T threads).
    modeled_speedup: f64,
    /// modeled_speedup / threads.
    efficiency: f64,
    /// central_ms / modeled_ms: how much faster than the monolithic solve
    /// the sharded path is at this thread count.
    vs_central: f64,
    /// Actual wall-clock of `balb_sharded_threaded` on this host.
    measured_ms: f64,
    /// Modeled pipelined solve at this thread count: the merge overlaps
    /// the shard-solve makespan instead of serializing after it.
    #[serde(default)]
    pipelined_ms: f64,
    /// pipelined_ms(1 thread) / pipelined_ms(T threads).
    #[serde(default)]
    pipelined_speedup: f64,
    /// pipelined_speedup / threads.
    #[serde(default)]
    pipelined_efficiency: f64,
    /// Actual wall-clock of `balb_sharded_pipelined` on this host.
    #[serde(default)]
    measured_pipelined_ms: f64,
}

#[derive(Serialize, Deserialize)]
struct FleetRow {
    cameras: usize,
    objects: usize,
    shards: usize,
    largest_shard: usize,
    central_ms: f64,
    /// Full one-thread sharded solve (keying + per-shard solves + merge).
    sharded_serial_ms: f64,
    /// The serial residue of the sharded solve: bucket scatter, merge, and
    /// the global priority sort.
    overhead_ms: f64,
    /// The merge portion of the residue — what the pipelined solve hides
    /// behind the shard-solve makespan.
    #[serde(default)]
    merge_ms: f64,
    threads: Vec<ThreadRow>,
}

#[derive(Serialize, Deserialize)]
struct StageShare {
    stage: String,
    total_ms: f64,
    share: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    host_cpus: usize,
    seed: u64,
    /// 8-thread modeled speedup on the largest fleet: the regression-gated
    /// headline.
    headline_fleet: usize,
    headline_speedup_8t: f64,
    /// 8-thread pipelined strong-scaling efficiency on the largest fleet:
    /// the second regression-gated headline.
    #[serde(default)]
    headline_pipelined_efficiency_8t: f64,
    fleets: Vec<FleetRow>,
    /// Per-stage time shares of a traced sharded pipeline run on a small
    /// city fleet.
    stage_shares: Vec<StageShare>,
}

/// Snapshots one key-frame scheduling instance out of a warmed city world:
/// every world object visible somewhere becomes an object whose per-camera
/// crop sizes come from the true projected boxes.
fn city_problem(scenario: &Scenario, rng: &mut ChaCha8Rng) -> MvsProblem {
    let world = scenario.warmed_world(60.0, rng);
    let cameras: Vec<CameraInfo> = scenario
        .devices
        .iter()
        .enumerate()
        .map(|(i, &d)| CameraInfo {
            id: CameraId(i),
            profile: LatencyProfile::for_device(d),
        })
        .collect();
    let mut sizes_by_truth: BTreeMap<u64, BTreeMap<CameraId, SizeClass>> = BTreeMap::new();
    for (cam, model) in scenario.cameras.iter().enumerate() {
        for truth in model.visible_objects(&world, scenario.occlusion_threshold) {
            sizes_by_truth.entry(truth.id).or_default().insert(
                CameraId(cam),
                SizeClass::quantize(truth.bbox.width(), truth.bbox.height()),
            );
        }
    }
    let objects: Vec<ObjectInfo> = sizes_by_truth
        .into_values()
        .enumerate()
        .map(|(j, sizes)| ObjectInfo {
            id: ObjectId(j),
            sizes,
        })
        .collect();
    MvsProblem::new(cameras, objects).expect("city snapshot is a valid instance")
}

fn min_of_reps<F: FnMut() -> f64>(mut f: F) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn time_ms<T, F: FnMut() -> T>(f: &mut F) -> f64 {
    let started = Instant::now();
    let out = f();
    let ms = started.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(out);
    ms
}

/// Longest-processing-time list schedule: the makespan of running the
/// measured per-shard solves on `threads` workers.
fn lpt_makespan_ms(shard_ms: &[f64], threads: usize) -> f64 {
    let mut sorted: Vec<f64> = shard_ms.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite times"));
    let mut workers = vec![0.0f64; threads.max(1)];
    for t in sorted {
        let min = workers
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
            .expect("at least one worker");
        *min += t;
    }
    workers.iter().fold(0.0f64, |a, &b| a.max(b))
}

fn latency_bits(s: &BalbSchedule) -> Vec<u64> {
    s.camera_latencies_ms.iter().map(|l| l.to_bits()).collect()
}

fn bench_fleet(cameras: usize) -> FleetRow {
    let scenario = Scenario::city(&CityConfig {
        cameras,
        seed: SEED,
        intensity: INTENSITY,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let problem = city_problem(&scenario, &mut rng);
    let graph = OverlapGraph::from_problem(&problem);
    let plan = ShardPlan::from_components(&graph);
    assert!(plan.is_exact(), "instance coverage plans are always exact");

    // Correctness before timing: the sharded schedule must be bitwise
    // identical to the monolithic one on this exact plan.
    let central = balb_central(&problem);
    let sharded = balb_sharded(&problem, &plan);
    assert_eq!(sharded.assignment, central.assignment);
    assert_eq!(sharded.priority, central.priority);
    assert_eq!(latency_bits(&sharded), latency_bits(&central));
    // … and so must the pipelined merge, whose completion order is
    // nondeterministic.
    let pipelined = balb_sharded_pipelined(&problem, &plan, 3);
    assert_eq!(pipelined.assignment, central.assignment);
    assert_eq!(pipelined.priority, central.priority);
    assert_eq!(latency_bits(&pipelined), latency_bits(&central));

    let central_ms = min_of_reps(|| time_ms(&mut || balb_central(&problem)));
    // Profile the actual sharded execution path on one thread: per-shard
    // solve times (parallel across workers), the object-keying pass
    // (parallel over object chunks), and the serial scatter/merge residue.
    // Each component is minimized independently across repetitions — the
    // usual noise-floor estimate — so one preempted repetition cannot
    // inflate a single component of the model.
    let mut timings: Option<mvs_core::ShardTimings> = None;
    for _ in 0..PROFILE_REPS {
        let (_, t) = balb_sharded_profiled(&problem, &plan);
        timings = Some(match timings {
            None => t,
            Some(best) => mvs_core::ShardTimings {
                keying_ms: best.keying_ms.min(t.keying_ms),
                shard_ms: best
                    .shard_ms
                    .iter()
                    .zip(&t.shard_ms)
                    .map(|(a, b)| a.min(*b))
                    .collect(),
                serial_ms: best.serial_ms.min(t.serial_ms),
                merge_ms: best.merge_ms.min(t.merge_ms),
                total_ms: best.total_ms.min(t.total_ms),
            },
        });
    }
    let timings = timings.expect("PROFILE_REPS > 0");
    let sharded_serial_ms = timings.total_ms;
    let overhead_ms = timings.serial_ms;

    let model = |t: usize| {
        timings.keying_ms / t as f64 + lpt_makespan_ms(&timings.shard_ms, t) + timings.serial_ms
    };
    // Pipelined: the merge overlaps the shard-solve makespan (disjoint
    // output columns make the completion order irrelevant), leaving only
    // the scatter and priority sort serial. One thread solves inline, so
    // the model collapses to the sequential one there.
    let model_pipelined = |t: usize| {
        if t <= 1 {
            return model(1);
        }
        let makespan = lpt_makespan_ms(&timings.shard_ms, t);
        timings.keying_ms / t as f64
            + makespan.max(timings.merge_ms)
            + (timings.serial_ms - timings.merge_ms)
    };
    let base_ms = model(1);
    let pipelined_base_ms = model_pipelined(1);
    let threads = THREAD_SWEEP
        .iter()
        .map(|&t| {
            let modeled_ms = model(t);
            let modeled_speedup = base_ms / modeled_ms;
            let measured_ms =
                min_of_reps(|| time_ms(&mut || balb_sharded_threaded(&problem, &plan, t)));
            let pipelined_ms = model_pipelined(t);
            let pipelined_speedup = pipelined_base_ms / pipelined_ms;
            let measured_pipelined_ms =
                min_of_reps(|| time_ms(&mut || balb_sharded_pipelined(&problem, &plan, t)));
            ThreadRow {
                threads: t,
                modeled_ms,
                modeled_speedup,
                efficiency: modeled_speedup / t as f64,
                vs_central: central_ms / modeled_ms,
                measured_ms,
                pipelined_ms,
                pipelined_speedup,
                pipelined_efficiency: pipelined_speedup / t as f64,
                measured_pipelined_ms,
            }
        })
        .collect();

    FleetRow {
        cameras,
        objects: problem.num_objects(),
        shards: plan.num_shards(),
        largest_shard: plan.largest_shard(),
        central_ms,
        sharded_serial_ms,
        overhead_ms,
        merge_ms: timings.merge_ms,
        threads,
    }
}

/// Traced sharded pipeline run on a small city fleet: where does key-frame
/// time actually go once sharding is on?
fn stage_shares() -> Vec<StageShare> {
    let scenario = Scenario::city(&CityConfig {
        cameras: 16,
        seed: SEED,
        intensity: 1.0,
    });
    let config = PipelineConfig {
        train_s: 30.0,
        eval_s: 30.0,
        seed: SEED,
        shard_solver: true,
        ..PipelineConfig::paper_default(Algorithm::BalbCen)
    };
    let (_, trace) = run_pipeline_traced(&scenario, &config);
    let stats = trace.stage_stats();
    let total: f64 = stats.values().map(|s| s.total_ms).sum();
    stats
        .iter()
        .map(|(stage, s)| StageShare {
            stage: format!("{stage:?}"),
            total_ms: s.total_ms,
            share: if total > 0.0 { s.total_ms / total } else { 0.0 },
        })
        .collect()
}

fn check_against(report: &Report, path: &str) -> Result<(), String> {
    let raw =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let baseline: Report =
        serde_json::from_str(&raw).map_err(|e| format!("cannot parse baseline {path}: {e}"))?;
    let floor = baseline.headline_speedup_8t / CHECK_TOLERANCE;
    if report.headline_speedup_8t < floor {
        return Err(format!(
            "8-thread speedup regressed: {:.2}x < {:.2}x (baseline {:.2}x / {CHECK_TOLERANCE})",
            report.headline_speedup_8t, floor, baseline.headline_speedup_8t
        ));
    }
    println!(
        "check ok: 8-thread speedup {:.2}x >= floor {:.2}x (baseline {:.2}x)",
        report.headline_speedup_8t, floor, baseline.headline_speedup_8t
    );
    let pipelined_floor = (baseline.headline_pipelined_efficiency_8t / CHECK_TOLERANCE)
        .max(PIPELINED_EFFICIENCY_FLOOR);
    if report.headline_pipelined_efficiency_8t < pipelined_floor {
        return Err(format!(
            "8-thread pipelined efficiency regressed: {:.0}% < {:.0}% (baseline {:.0}% / {CHECK_TOLERANCE}, absolute floor {:.0}%)",
            report.headline_pipelined_efficiency_8t * 100.0,
            pipelined_floor * 100.0,
            baseline.headline_pipelined_efficiency_8t * 100.0,
            PIPELINED_EFFICIENCY_FLOOR * 100.0
        ));
    }
    println!(
        "check ok: 8-thread pipelined efficiency {:.0}% >= floor {:.0}% (baseline {:.0}%)",
        report.headline_pipelined_efficiency_8t * 100.0,
        pipelined_floor * 100.0,
        baseline.headline_pipelined_efficiency_8t * 100.0
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--check requires a baseline path");
                std::process::exit(2);
            })
            .clone()
    });

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut fleets = Vec::new();
    let mut table = TextTable::new(vec![
        "cameras",
        "objects",
        "shards",
        "central (ms)",
        "sharded 1T (ms)",
        "8T speedup",
        "8T efficiency",
        "8T pipelined eff.",
        "8T vs central",
    ]);
    for &cameras in &FLEETS {
        let row = bench_fleet(cameras);
        let at8 = row
            .threads
            .iter()
            .find(|t| t.threads == 8)
            .expect("sweep includes 8 threads");
        table.row(vec![
            row.cameras.to_string(),
            row.objects.to_string(),
            row.shards.to_string(),
            format!("{:.3}", row.central_ms),
            format!("{:.3}", row.sharded_serial_ms),
            format!("{:.2}x", at8.modeled_speedup),
            format!("{:.0}%", at8.efficiency * 100.0),
            format!("{:.0}%", at8.pipelined_efficiency * 100.0),
            format!("{:.2}x", at8.vs_central),
        ]);
        fleets.push(row);
    }

    let headline = fleets.last().expect("at least one fleet");
    let headline_fleet = headline.cameras;
    let headline_at8 = headline
        .threads
        .iter()
        .find(|t| t.threads == 8)
        .expect("sweep includes 8 threads");
    let headline_speedup_8t = headline_at8.modeled_speedup;
    let headline_pipelined_efficiency_8t = headline_at8.pipelined_efficiency;

    println!("City-fleet sharded scheduling ({host_cpus} host CPUs)\n");
    println!("{table}");
    println!(
        "headline: {headline_speedup_8t:.2}x modeled speedup at 8 threads on {headline_fleet} cameras"
    );
    println!(
        "headline: {:.0}% pipelined strong-scaling efficiency at 8 threads on {headline_fleet} cameras",
        headline_pipelined_efficiency_8t * 100.0
    );
    if host_cpus < 8 {
        println!("(measured wall-clock columns are host-bound on {host_cpus} CPUs;");
        println!(" the modeled speedup is the portable number.)");
    }

    let report = Report {
        host_cpus,
        seed: SEED,
        headline_fleet,
        headline_speedup_8t,
        headline_pipelined_efficiency_8t,
        fleets,
        stage_shares: stage_shares(),
    };
    let path = write_json("BENCH_fleet", &report);
    println!("\nwrote {}", path.display());

    if let Some(baseline) = check_path {
        if let Err(msg) = check_against(&report, &baseline) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
