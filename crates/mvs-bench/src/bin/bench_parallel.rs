//! Perf-trajectory artifact: serial-vs-parallel wall-clock for sweep
//! execution, per scenario, written to `results/BENCH_parallel.json`.
//!
//! Each scenario's sweep (algorithm × seed grid) is run twice over the same
//! jobs: once strictly serially, once through [`parallel_map`]'s shared
//! pool. Runs are deterministic in their config (measured overheads off),
//! so the two passes must produce identical results — the bin asserts this
//! — and the only difference is wall-clock time. On a multi-core host the
//! sweep speedup approaches the pool width; on a single-core host it is ~1x
//! (the JSON records `host_cpus` so readers can tell).
//!
//! Scenarios: the paper's S1/S3, a six-camera "S6" ring built with
//! [`ScenarioBuilder`], and a 16-camera procedural city fleet
//! ([`Scenario::city`]) so the pre/post-sharding contrast is recorded in
//! one artifact. Alongside raw speedup, each row reports parallel
//! *efficiency* — speedup divided by the pool width.
//!
//! Run with `cargo run --release -p mvs-bench --bin bench_parallel`.

use mvs_bench::{parallel_map, write_json, SEED};
use mvs_geometry::{FrameDims, Point2};
use mvs_metrics::TextTable;
use mvs_sim::{
    resolve_threads, run_pipeline, Algorithm, CameraModel, CityConfig, PipelineConfig,
    PipelineResult, Route, Scenario, ScenarioBuilder, ScenarioKind, SpawnConfig, TrafficLight,
};
use mvs_vision::DeviceKind;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    scenario: String,
    cameras: usize,
    jobs: usize,
    pool_threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    /// Speedup divided by the pool width: 1.0 = perfect scaling.
    efficiency: f64,
}

#[derive(Serialize)]
struct Report {
    host_cpus: usize,
    pool_threads: usize,
    train_s: f64,
    eval_s: f64,
    rows: Vec<Row>,
}

/// Six cameras around a signalized intersection: S1's road network watched
/// by a denser ring (2×Xavier, 2×TX2, 2×Nano).
fn s6() -> Scenario {
    let speed = 9.0;
    let rate = 0.16;
    let light = |offset| TrafficLight {
        period_s: 40.0,
        green_fraction: 0.45,
        offset_s: offset,
        stop_line_s: 100.0,
    };
    let lane = |waypoints, offset| {
        (
            Route::new(waypoints, speed),
            SpawnConfig {
                rate_per_s: rate,
                min_gap_m: 10.0,
            },
            Some(light(offset)),
        )
    };
    let lanes = [
        lane(
            vec![Point2::new(-110.0, -3.0), Point2::new(110.0, -3.0)],
            0.0,
        ),
        lane(vec![Point2::new(110.0, 3.0), Point2::new(-110.0, 3.0)], 0.0),
        lane(
            vec![Point2::new(3.0, -110.0), Point2::new(3.0, 110.0)],
            20.0,
        ),
        lane(
            vec![Point2::new(-3.0, 110.0), Point2::new(-3.0, -110.0)],
            20.0,
        ),
    ];
    let frame = FrameDims::REGULAR;
    let center = Point2::ORIGIN;
    let ring = [
        (Point2::new(-45.0, -18.0), DeviceKind::Xavier),
        (Point2::new(45.0, 18.0), DeviceKind::Xavier),
        (Point2::new(18.0, -45.0), DeviceKind::Tx2),
        (Point2::new(-18.0, 45.0), DeviceKind::Tx2),
        (Point2::new(-40.0, 22.0), DeviceKind::Nano),
        (Point2::new(40.0, -22.0), DeviceKind::Nano),
    ];
    let mut builder = ScenarioBuilder::new("S6");
    for (pos, device) in ring {
        builder = builder.camera(CameraModel::looking_at(pos, center, frame), device);
    }
    for (route, spawn, light) in lanes {
        builder = builder.lane(route, spawn, light);
    }
    builder.build().expect("S6 is well-formed")
}

fn sweep_config(algorithm: Algorithm, seed: u64) -> PipelineConfig {
    PipelineConfig {
        train_s: 30.0,
        eval_s: 30.0,
        seed,
        // Pure-function mode: lets us assert the serial and parallel passes
        // agree bitwise.
        measured_overheads: false,
        ..PipelineConfig::paper_default(algorithm)
    }
}

fn main() {
    let algorithms = [
        Algorithm::Full,
        Algorithm::BalbInd,
        Algorithm::StaticPartition,
        Algorithm::Balb,
    ];
    let seeds = [SEED, SEED + 1];
    let pool_threads = resolve_threads(0);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let scenarios: Vec<(String, Scenario)> = vec![
        ("S1".to_string(), Scenario::new(ScenarioKind::S1)),
        ("S3".to_string(), Scenario::new(ScenarioKind::S3)),
        ("S6".to_string(), s6()),
        (
            "city-16".to_string(),
            Scenario::city(&CityConfig {
                cameras: 16,
                seed: SEED,
                intensity: 1.0,
            }),
        ),
    ];

    let mut rows = Vec::new();
    let mut table = TextTable::new(vec![
        "scenario",
        "cameras",
        "jobs",
        "serial (ms)",
        "parallel (ms)",
        "speedup",
        "efficiency",
    ]);
    for (name, scenario) in &scenarios {
        let jobs: Vec<(Algorithm, u64)> = algorithms
            .iter()
            .flat_map(|&a| seeds.iter().map(move |&s| (a, s)))
            .collect();

        let started = Instant::now();
        let serial: Vec<PipelineResult> = jobs
            .iter()
            .map(|&(a, s)| run_pipeline(scenario, &sweep_config(a, s)))
            .collect();
        let serial_ms = started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        let parallel = parallel_map(jobs.clone(), |&(a, s)| {
            run_pipeline(scenario, &sweep_config(a, s))
        });
        let parallel_ms = started.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            serial, parallel,
            "{name}: sweep results must not depend on execution order"
        );

        let speedup = serial_ms / parallel_ms;
        let efficiency = speedup / pool_threads as f64;
        table.row(vec![
            name.clone(),
            scenario.num_cameras().to_string(),
            jobs.len().to_string(),
            format!("{serial_ms:.0}"),
            format!("{parallel_ms:.0}"),
            format!("{speedup:.2}x"),
            format!("{:.0}%", efficiency * 100.0),
        ]);
        rows.push(Row {
            scenario: name.clone(),
            cameras: scenario.num_cameras(),
            jobs: jobs.len(),
            pool_threads,
            serial_ms,
            parallel_ms,
            speedup,
            efficiency,
        });
    }

    println!(
        "Sweep wall-clock: serial vs parallel ({pool_threads} pool threads, {host_cpus} CPUs)\n"
    );
    println!("{table}");
    if host_cpus == 1 {
        println!("single-CPU host: parallel wall-clock cannot beat serial here;");
        println!("rerun on a multi-core machine to see the pool-width speedup.");
    }
    let report = Report {
        host_cpus,
        pool_threads,
        train_s: 30.0,
        eval_s: 30.0,
        rows,
    };
    let path = write_json("BENCH_parallel", &report);
    println!("\nwrote {}", path.display());
}
