//! Fault-tolerance artifact: recall and tail latency under camera dropout
//! and key-frame message loss, written to `results/BENCH_faults.json`.
//!
//! Sweeps a dropout-rate × loss-rate grid on the busiest deployment (S3,
//! full BALB), replicated over seeds, and records per-cell mean recall,
//! mean/p99 system latency, and the merged degradation counters. The
//! point of the artifact: recall must *degrade* with fault intensity —
//! monotonically within noise — rather than collapse, and the fault-free
//! cell must match the plain pipeline bitwise (asserted).
//!
//! Run with `cargo run --release -p mvs-bench --bin bench_faults`.

use mvs_bench::{parallel_map, write_json, SEED};
use mvs_metrics::{DegradationCounters, Running, Summary, TextTable};
use mvs_sim::{run_pipeline, Algorithm, FaultModel, PipelineConfig, Scenario, ScenarioKind};
use serde::Serialize;

const DROPOUT_RATES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];
const LOSS_RATES: [f64; 3] = [0.0, 0.10, 0.30];
const SEEDS: u64 = 3;

#[derive(Serialize)]
struct Cell {
    dropout_per_horizon: f64,
    keyframe_loss: f64,
    seeds: u64,
    recall_mean: f64,
    recall_std: f64,
    latency_mean_ms: f64,
    latency_p99_ms: f64,
    degradation: DegradationCounters,
}

#[derive(Serialize)]
struct Report {
    scenario: String,
    algorithm: String,
    train_s: f64,
    eval_s: f64,
    cells: Vec<Cell>,
}

fn config(dropout: f64, loss: f64, seed: u64) -> PipelineConfig {
    PipelineConfig {
        train_s: 30.0,
        eval_s: 30.0,
        seed,
        // Pure-function mode: cells are reproducible and the fault-free
        // cell is comparable bitwise against the plain pipeline.
        measured_overheads: false,
        faults: FaultModel {
            dropout_per_horizon: dropout,
            rejoin_per_horizon: 0.5,
            keyframe_loss: loss,
            ..FaultModel::none()
        },
        ..PipelineConfig::paper_default(Algorithm::Balb)
    }
}

fn main() {
    let scenario = Scenario::new(ScenarioKind::S3);
    let jobs: Vec<(f64, f64, u64)> = DROPOUT_RATES
        .iter()
        .flat_map(|&d| {
            LOSS_RATES
                .iter()
                .flat_map(move |&l| (0..SEEDS).map(move |s| (d, l, SEED + s)))
        })
        .collect();
    let runs = parallel_map(jobs.clone(), |&(d, l, s)| {
        run_pipeline(&scenario, &config(d, l, s))
    });

    // The fault-free cell is the plain pipeline: FaultModel with zero
    // rates must not perturb a single bit.
    let plain = run_pipeline(
        &scenario,
        &PipelineConfig {
            faults: FaultModel::none(),
            ..config(0.0, 0.0, SEED)
        },
    );
    let fault_free = jobs
        .iter()
        .position(|&(d, l, s)| d == 0.0 && l == 0.0 && s == SEED)
        .expect("grid contains the fault-free cell");
    assert_eq!(
        plain, runs[fault_free],
        "zero-rate faults must be bitwise identical to no faults"
    );

    let mut cells = Vec::new();
    let mut table = TextTable::new(vec![
        "dropout/horizon",
        "kf loss",
        "recall",
        "mean lat (ms)",
        "p99 lat (ms)",
        "dropouts",
        "lost msgs",
        "desyncs",
    ]);
    for &d in &DROPOUT_RATES {
        for &l in &LOSS_RATES {
            let mut recall = Running::new();
            let mut latency_mean = Running::new();
            let mut p99 = Running::new();
            let mut degradation = DegradationCounters::default();
            for (job, run) in jobs.iter().zip(&runs) {
                if job.0 != d || job.1 != l {
                    continue;
                }
                // Degraded runs keep metrics finite by construction, but a
                // benchmark must not die on a pathological sample either.
                recall.try_push(run.recall);
                latency_mean.try_push(run.mean_latency_ms);
                p99.try_push(Summary::of(run.latency.samples_ms()).p99);
                degradation.merge(&run.degradation);
            }
            table.row(vec![
                format!("{d:.2}"),
                format!("{l:.2}"),
                recall.format(3),
                format!("{:.1}", latency_mean.mean()),
                format!("{:.1}", p99.mean()),
                degradation.dropouts.to_string(),
                degradation.lost_messages().to_string(),
                degradation.desynced_horizons.to_string(),
            ]);
            cells.push(Cell {
                dropout_per_horizon: d,
                keyframe_loss: l,
                seeds: SEEDS,
                recall_mean: recall.mean(),
                recall_std: recall.sample_std(),
                latency_mean_ms: latency_mean.mean(),
                latency_p99_ms: p99.mean(),
                degradation,
            });
        }
    }

    println!("Recall and tail latency vs fault intensity (S3, BALB, {SEEDS} seeds)\n");
    println!("{table}");

    // Degradation sanity: the fault-free corner is the best cell (within
    // noise), and even the harshest corner keeps a usable fraction of it.
    let baseline = cells[0].recall_mean;
    let worst = cells
        .iter()
        .map(|c| c.recall_mean)
        .fold(f64::INFINITY, f64::min);
    for c in &cells {
        assert!(
            c.recall_mean <= baseline + 0.03,
            "faults improved recall at dropout {} loss {}: {} vs {}",
            c.dropout_per_horizon,
            c.keyframe_loss,
            c.recall_mean,
            baseline
        );
    }
    assert!(
        worst > 0.25 * baseline,
        "recall collapsed under faults: {worst} vs fault-free {baseline}"
    );
    println!(
        "recall degrades from {:.3} (fault-free) to {:.3} (worst cell) without collapsing",
        baseline, worst
    );

    let report = Report {
        scenario: "S3".to_string(),
        algorithm: Algorithm::Balb.to_string(),
        train_s: 30.0,
        eval_s: 30.0,
        cells,
    };
    let path = write_json("BENCH_faults", &report);
    println!("\nwrote {}", path.display());
}
