//! Shared plumbing for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). This library holds the pieces they
//! share: standard run durations, result serialization, and the
//! classification/regression feature extraction used by Figs. 10/11.

use mvs_assoc::CorrespondenceSample;
use mvs_sim::{resolve_threads, Algorithm, PipelineConfig, ScenarioKind};
use serde::Serialize;
use std::path::PathBuf;

/// Simulation seconds used to train association models in experiments.
pub const TRAIN_S: f64 = 90.0;
/// Simulation seconds evaluated in experiments.
pub const EVAL_S: f64 = 90.0;
/// Master seed for all experiment binaries.
pub const SEED: u64 = 2022;
/// Number of seed replications for the headline result figures.
pub const REPLICATIONS: usize = 3;

/// The standard experiment configuration: the paper's operating point with
/// the harness's durations and seed.
pub fn experiment_config(algorithm: Algorithm) -> PipelineConfig {
    PipelineConfig {
        train_s: TRAIN_S,
        eval_s: EVAL_S,
        seed: SEED,
        ..PipelineConfig::paper_default(algorithm)
    }
}

/// Directory where experiment binaries drop machine-readable results.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir
}

/// Writes a result struct as pretty JSON under `results/<name>.json` and
/// returns the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("results serialize");
    std::fs::write(&path, json).expect("results are writable");
    path
}

/// Scenario display order used by every figure.
pub const SCENARIOS: [ScenarioKind; 3] = [ScenarioKind::S1, ScenarioKind::S2, ScenarioKind::S3];

/// Runs `f` over `items` on the persistent pool ([`mvs_exec::pool`]) and
/// returns the outputs in input order. Pipeline runs in a sweep are
/// independent and each is deterministic in its config, so fanning a sweep
/// out across threads changes wall-clock time only — every figure binary
/// produces the same JSON at any pool width.
///
/// A shared cursor hands out items one at a time
/// ([`mvs_exec::Executor::par_map_queue`]), which keeps the pool busy even
/// when run times differ wildly across configs (a Full run costs far more
/// simulated work than a BALB run). The pool width follows
/// [`resolve_threads`]`(0)`: `MVS_THREADS` if set, else the machine.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    mvs_exec::pool().par_map_queue(&items, resolve_threads(0), f)
}

/// Classification dataset extracted from correspondence samples: features
/// are the source bounding-box coordinates, the label is whether the object
/// is visible in the target camera (Fig. 10's task).
pub fn classification_dataset(samples: &[CorrespondenceSample]) -> (Vec<Vec<f64>>, Vec<usize>) {
    let xs = samples.iter().map(|s| s.src.to_array().to_vec()).collect();
    let ys = samples
        .iter()
        .map(|s| usize::from(s.dst.is_some()))
        .collect();
    (xs, ys)
}

/// Regression dataset: visible pairs only; targets are the target-camera
/// box coordinates (Fig. 11's task).
pub fn regression_dataset(samples: &[CorrespondenceSample]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let pos: Vec<_> = samples.iter().filter(|s| s.dst.is_some()).collect();
    let xs = pos.iter().map(|s| s.src.to_array().to_vec()).collect();
    let ys = pos
        .iter()
        .map(|s| s.dst.expect("filtered to visible").to_array().to_vec())
        .collect();
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvs_geometry::BBox;

    fn sample(visible: bool) -> CorrespondenceSample {
        CorrespondenceSample {
            src: BBox::new(0.0, 0.0, 10.0, 10.0).unwrap(),
            dst: visible.then(|| BBox::new(5.0, 5.0, 15.0, 15.0).unwrap()),
        }
    }

    #[test]
    fn classification_dataset_labels() {
        let (xs, ys) = classification_dataset(&[sample(true), sample(false)]);
        assert_eq!(xs.len(), 2);
        assert_eq!(ys, vec![1, 0]);
        assert_eq!(xs[0], vec![0.0, 0.0, 10.0, 10.0]);
    }

    #[test]
    fn regression_dataset_filters_invisible() {
        let (xs, ys) = regression_dataset(&[sample(true), sample(false)]);
        assert_eq!(xs.len(), 1);
        assert_eq!(ys[0], vec![5.0, 5.0, 15.0, 15.0]);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = parallel_map(items.clone(), |&i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(
            parallel_map(Vec::<usize>::new(), |&i| i),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn experiment_config_uses_harness_durations() {
        let c = experiment_config(Algorithm::Balb);
        assert_eq!(c.train_s, TRAIN_S);
        assert_eq!(c.eval_s, EVAL_S);
        assert_eq!(c.seed, SEED);
        assert_eq!(c.horizon, 10);
    }
}
