#!/usr/bin/env bash
# Runs cargo with the devstubs/ stand-in crates patched in, for development
# on machines with no network access and no cargo registry cache.
#
#   scripts/offline-dev.sh build --release
#   scripts/offline-dev.sh test -q
#   scripts/offline-dev.sh clippy --workspace -- -D warnings
#
# Normal builds (with network) use the real crates.io dependencies; see
# devstubs/README.md for what the stubs guarantee.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# A separate target dir keeps stub artifacts from clobbering real ones.
export CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-${repo_root}/target-offline}"

# External subcommands (clippy, fmt) re-invoke cargo themselves and drop
# CLI-level --config/--offline flags, so the patch table and offline switch
# go through a generated CARGO_HOME config that child processes inherit.
offline_home="${CARGO_TARGET_DIR}/cargo-home"
mkdir -p "${offline_home}"
{
  echo '[net]'
  echo 'offline = true'
  echo '[patch.crates-io]'
  for crate in rand rand_core rand_chacha serde serde_derive serde_json proptest criterion; do
    echo "${crate} = { path = \"${repo_root}/devstubs/${crate}\" }"
  done
} > "${offline_home}/config.toml"
export CARGO_HOME="${offline_home}"

cd "${repo_root}"
exec cargo "$@"
