//! Offline stand-in for `proptest`: a deterministic strategy/runner
//! without shrinking. Failing inputs panic via plain assertions, printing
//! the case number; rerunning is deterministic, so that is enough to
//! reproduce locally.

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `.prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
);

/// Full-range strategy for `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Strategy for Any<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection size specifications: a fixed size or a half-open range.
pub trait SizeSpec {
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeSpec for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeSpec for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

pub mod collection {
    //! `prop::collection` subset.

    use super::{SizeSpec, Strategy, TestRng};
    use std::collections::BTreeSet;

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    pub fn vec<S: Strategy, Z: SizeSpec>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeSpec> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeSpec,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeSpec,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set, as with real proptest.
            for _ in 0..target.saturating_mul(4) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod sample {
    //! `prop::sample` subset.

    use super::{Strategy, TestRng};

    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`, …).
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

/// The `proptest!` test-definition macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    // Hash the test name into the stream so sibling tests
                    // explore different inputs.
                    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                    }
                    let mut rng = $crate::TestRng::new(seed ^ (case as u64) << 1);
                    (|| {
                        $( let $pat = $crate::Strategy::generate(&$strat, &mut rng); )+
                        $body
                    })();
                }
            }
        )*
    };
}

/// Assertion macros: plain assertions (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}
