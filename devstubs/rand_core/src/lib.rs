//! Offline stand-in for `rand_core` 0.6.
//!
//! Reproduces the exact semantics of the pieces the workspace relies on:
//! `seed_from_u64`'s PCG32 seed expansion and `BlockRng`'s buffered output
//! with its distinctive `next_u64` wrap-around behaviour.

use std::fmt;

/// Minimal error type (never produced by the deterministic generators
/// used in this workspace).
#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A marker trait for cryptographically secure generators.
pub trait CryptoRng {}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seed expansion identical to rand_core 0.6: a PCG32 sequence copied
    /// into the seed four bytes at a time.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }

        Self::from_seed(seed)
    }
}

pub mod block {
    //! Buffered block generators, mirroring `rand_core::block`.

    use super::{RngCore, SeedableRng};

    /// A generator that produces a block of output at a time.
    pub trait BlockRngCore {
        type Item;
        type Results: AsRef<[Self::Item]> + AsMut<[Self::Item]> + Default;

        fn generate(&mut self, results: &mut Self::Results);
    }

    /// Wraps a [`BlockRngCore`] into an [`RngCore`], reproducing the exact
    /// index bookkeeping of rand_core 0.6 (including the split-word
    /// `next_u64` at the end of a block).
    #[derive(Clone, Debug)]
    pub struct BlockRng<R: BlockRngCore> {
        pub core: R,
        results: R::Results,
        index: usize,
    }

    impl<R: BlockRngCore> BlockRng<R> {
        pub fn new(core: R) -> Self {
            let results = R::Results::default();
            let index = results.as_ref().len();
            BlockRng {
                core,
                results,
                index,
            }
        }

        pub fn index(&self) -> usize {
            self.index
        }

        pub fn generate_and_set(&mut self, index: usize) {
            assert!(index < self.results.as_ref().len());
            self.core.generate(&mut self.results);
            self.index = index;
        }
    }

    impl<R: BlockRngCore<Item = u32>> RngCore for BlockRng<R> {
        fn next_u32(&mut self) -> u32 {
            if self.index >= self.results.as_ref().len() {
                self.generate_and_set(0);
            }
            let value = self.results.as_ref()[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            let read_u64 = |results: &[u32], index: usize| {
                u64::from(results[index + 1]) << 32 | u64::from(results[index])
            };
            let len = self.results.as_ref().len();
            let index = self.index;
            if index < len - 1 {
                self.index += 2;
                read_u64(self.results.as_ref(), index)
            } else if index >= len {
                self.generate_and_set(2);
                read_u64(self.results.as_ref(), 0)
            } else {
                let x = u64::from(self.results.as_ref()[len - 1]);
                self.generate_and_set(1);
                let y = u64::from(self.results.as_ref()[0]);
                (y << 32) | x
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut filled = 0;
            while filled < dest.len() {
                let word = self.next_u32().to_le_bytes();
                let n = (dest.len() - filled).min(4);
                dest[filled..filled + n].copy_from_slice(&word[..n]);
                filled += n;
            }
        }
    }

    impl<R: BlockRngCore + SeedableRng> SeedableRng for BlockRng<R> {
        type Seed = R::Seed;

        fn from_seed(seed: Self::Seed) -> Self {
            BlockRng::new(R::from_seed(seed))
        }
    }
}
