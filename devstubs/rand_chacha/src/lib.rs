//! Offline stand-in for `rand_chacha` 0.3.
//!
//! Implements the actual ChaCha stream cipher (IETF variant as used by
//! rand_chacha: 64-bit block counter in words 12–13, 64-bit stream in
//! words 14–15) and emits output through `rand_core::block::BlockRng` in
//! 4-block batches of 64 `u32` words — the same buffering the real crate
//! uses — so the generated streams are bit-identical.

use rand_core::block::{BlockRng, BlockRngCore};
use rand_core::{CryptoRng, RngCore, SeedableRng};

/// 64 output words (four 16-word ChaCha blocks), newtyped because arrays
/// this large do not implement `Default`.
#[derive(Clone, Debug)]
pub struct Array64<T>(pub [T; 64]);

impl<T: Default + Copy> Default for Array64<T> {
    fn default() -> Self {
        Array64([T::default(); 64])
    }
}

impl<T> AsRef<[T]> for Array64<T> {
    fn as_ref(&self) -> &[T] {
        &self.0
    }
}

impl<T> AsMut<[T]> for Array64<T> {
    fn as_mut(&mut self) -> &mut [T] {
        &mut self.0
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even.
fn chacha_block(input: &[u32; 16], rounds: u32, out: &mut [u32]) {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

macro_rules! chacha_impl {
    ($core:ident, $rng:ident, $rounds:expr) => {
        /// ChaCha block core with the given round count.
        #[derive(Clone, Debug)]
        pub struct $core {
            key: [u32; 8],
            counter: u64,
            stream: u64,
        }

        impl BlockRngCore for $core {
            type Item = u32;
            type Results = Array64<u32>;

            fn generate(&mut self, results: &mut Self::Results) {
                let mut state = [0u32; 16];
                state[0] = 0x6170_7865;
                state[1] = 0x3320_646e;
                state[2] = 0x7962_2d32;
                state[3] = 0x6b20_6574;
                state[4..12].copy_from_slice(&self.key);
                state[14] = self.stream as u32;
                state[15] = (self.stream >> 32) as u32;
                for block in 0..4 {
                    let counter = self.counter.wrapping_add(block as u64);
                    state[12] = counter as u32;
                    state[13] = (counter >> 32) as u32;
                    chacha_block(
                        &state,
                        $rounds,
                        &mut results.as_mut()[block * 16..(block + 1) * 16],
                    );
                }
                self.counter = self.counter.wrapping_add(4);
            }
        }

        impl SeedableRng for $core {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
                $core {
                    key,
                    counter: 0,
                    stream: 0,
                }
            }
        }

        impl CryptoRng for $core {}

        /// The buffered RNG over the core.
        #[derive(Clone, Debug)]
        pub struct $rng {
            rng: BlockRng<$core>,
        }

        impl SeedableRng for $rng {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $rng {
                    rng: BlockRng::new($core::from_seed(seed)),
                }
            }
        }

        impl RngCore for $rng {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.rng.next_u32()
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.rng.next_u64()
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                self.rng.fill_bytes(dest)
            }
        }

        impl CryptoRng for $rng {}

        impl $rng {
            /// Selects an independent output stream (words 14–15).
            pub fn set_stream(&mut self, stream: u64) {
                self.rng.core.stream = stream;
            }

            /// The current stream id.
            pub fn get_stream(&self) -> u64 {
                self.rng.core.stream
            }
        }
    };
}

chacha_impl!(ChaCha8Core, ChaCha8Rng, 8);
chacha_impl!(ChaCha12Core, ChaCha12Rng, 12);
chacha_impl!(ChaCha20Core, ChaCha20Rng, 20);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_rfc7539_block_one() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00 00 00 09 00 00 00 4a 00 00 00 00 (96-bit form).
        // rand_chacha's 64-bit-stream layout differs from the RFC nonce
        // split, so check the raw block function directly.
        let mut input = [0u32; 16];
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        for i in 0..8 {
            let b = (4 * i) as u32;
            input[4 + i] =
                u32::from_le_bytes([b as u8, (b + 1) as u8, (b + 2) as u8, (b + 3) as u8]);
        }
        input[12] = 1;
        input[13] = 0x0900_0000;
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let mut out = [0u32; 16];
        chacha_block(&input, 20, &mut out);
        assert_eq!(out[0], 0xe4e7_f110);
        assert_eq!(out[15], 0x4e3c_50a2);
    }

    #[test]
    fn deterministic_and_stream_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = ChaCha8Rng::seed_from_u64(7);
        c.set_stream(1);
        let mut d = ChaCha8Rng::seed_from_u64(7);
        assert_ne!(c.next_u64(), d.next_u64());
    }
}
