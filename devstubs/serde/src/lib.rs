//! Offline stand-in for `serde` 1.x, covering the subset this workspace
//! uses: plain `#[derive(Serialize, Deserialize)]` plus `serde_json`'s
//! `to_string` / `to_string_pretty` / `from_str`.
//!
//! Instead of serde's visitor architecture, values round-trip through a
//! small JSON-shaped [`Value`] tree. The derive macro (see
//! `devstubs/serde_derive`) targets `to_value` / `from_value` directly.
//! JSON shapes match real serde: structs are objects, newtype structs are
//! transparent, unit enum variants are strings, and data-carrying enum
//! variants are externally tagged single-key objects.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Object entries preserve insertion order so
/// serialized output matches serde's field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str) -> DeError {
        DeError(format!("expected {what}"))
    }

    pub fn missing_field(name: &str) -> DeError {
        DeError(format!("missing field `{name}`"))
    }

    pub fn unknown_variant(name: &str) -> DeError {
        DeError(format!("unknown variant `{name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent. Mirrors serde's
    /// `missing_field` helper: only `Option` succeeds.
    fn from_missing(name: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(name))
    }
}

/// Looks up and deserializes one struct field (used by derived code).
pub fn de_field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::from_missing(name),
    }
}

/// Looks up a named struct field, falling back to `Default::default()`
/// when it is absent — the stub's implementation of `#[serde(default)]`.
pub fn de_field_or_default<T: Deserialize + Default>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Ok(T::default()),
    }
}

macro_rules! ser_de_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer"))?;
                <$ty>::try_from(raw).map_err(|_| DeError::expected(stringify!($ty)))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected("integer"))?;
                <$ty>::try_from(raw).map_err(|_| DeError::expected(stringify!($ty)))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::expected("fixed-size array"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_name: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

/// JSON object keys are strings; integer-like keys are stringified the
/// way serde_json does it.
fn key_to_string(v: &Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err(DeError::expected("string-convertible map key")),
    }
}

fn key_from_string(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        return Value::U64(n);
    }
    if let Ok(n) = s.parse::<i64>() {
        return Value::I64(n);
    }
    Value::Str(s.to_string())
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value())
                        .expect("map keys must stringify for JSON");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_string(k))?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tuple = ($(
                            {
                                let _ = stringify!($name);
                                $name::from_value(
                                    it.next().ok_or_else(|| DeError::expected("tuple element"))?,
                                )?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(DeError::expected("tuple of matching arity"));
                        }
                        Ok(tuple)
                    }
                    _ => Err(DeError::expected("array")),
                }
            }
        }
    )+};
}

tuple_impls!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3)
);
