//! Offline stand-in for `serde_derive`: hand-rolled token parsing (no
//! `syn`/`quote`) generating impls of the stub `serde::Serialize` /
//! `serde::Deserialize` traits (`to_value` / `from_value`).
//!
//! Supported input shapes — exactly what this workspace uses:
//! named-field structs, single-field tuple (newtype) structs, and enums
//! whose variants are unit or struct-like. Generics are rejected loudly,
//! and the only `#[serde(...)]` attribute understood is
//! `#[serde(default)]` on a named field (absent fields deserialize to
//! `Default::default()`); any other serde attribute panics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field and whether it carries `#[serde(default)]`.
#[derive(Debug)]
struct FieldSpec {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Shape {
    /// `struct Name { fields }`
    Struct {
        name: String,
        fields: Vec<FieldSpec>,
    },
    /// `struct Name(T);`
    Newtype { name: String },
    /// `enum Name { Unit, Data { fields }, ... }`
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<FieldSpec>>)>,
    },
}

/// Whether an attribute body (the `[...]` group after `#`) is exactly
/// `serde(default)`. Any other `serde(...)` payload panics: the stub must
/// fail loudly rather than silently diverge from real serde semantics.
fn attr_is_serde_default(g: &proc_macro::Group) -> bool {
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            let is_default = args.len() == 1
                && matches!(&args[0], TokenTree::Ident(a) if a.to_string() == "default");
            assert!(
                is_default,
                "serde_derive stub: only #[serde(default)] on a named field is supported"
            );
            true
        }
        _ => false,
    }
}

/// Consumes leading attributes (`#[...]`) and visibility qualifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Extracts field names (and their `#[serde(default)]` flags) from the
/// tokens of a braced field list.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<FieldSpec> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Consume attributes and visibility, noting `#[serde(default)]`.
        let mut default = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if attr_is_serde_default(g) {
                            default = true;
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1; // pub(crate) etc.
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(FieldSpec {
            name: name.to_string(),
            default,
        });
        i += 1;
        // Expect `:`, then skip the type until a comma at angle-depth 0.
        // Groups are atomic tokens, so only `<`/`>` need depth tracking.
        let mut angle: i32 = 0;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: unexpected token {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let elems = 1 + inner
                    .iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count()
                    .saturating_sub(usize::from(matches!(
                        inner.last(),
                        Some(TokenTree::Punct(p)) if p.as_char() == ','
                    )));
                assert!(
                    elems == 1,
                    "serde_derive stub: only single-field tuple structs are supported ({name})"
                );
                Shape::Newtype { name }
            }
            other => panic!("serde_derive stub: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => {
            let Some(TokenTree::Group(body)) = tokens.get(i) else {
                panic!("serde_derive stub: expected enum body for {name}");
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body_tokens.len() {
                j = skip_attrs_and_vis(&body_tokens, j);
                let Some(TokenTree::Ident(vname)) = body_tokens.get(j) else {
                    break;
                };
                let vname = vname.to_string();
                j += 1;
                match body_tokens.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        variants.push((vname, Some(parse_named_fields(g))));
                        j += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!(
                            "serde_derive stub: tuple enum variant {name}::{vname} unsupported"
                        );
                    }
                    _ => variants.push((vname, None)),
                }
                if let Some(TokenTree::Punct(p)) = body_tokens.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
            }
            Shape::Enum { name, variants }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    None => format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                    ),
                    Some(fields) => {
                        let binders = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(vec![{entries}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let helper = if f.default {
                        "de_field_or_default"
                    } else {
                        "de_field"
                    };
                    let f = &f.name;
                    format!("{f}: ::serde::{helper}(fields, \"{f}\")?,")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let fields = v.as_object()\
                             .ok_or_else(|| ::serde::DeError::expected(\"object\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(vname, _)| {
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|(vname, f)| f.as_ref().map(|fields| (vname, fields)))
                .map(|(vname, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            let helper = if f.default {
                                "de_field_or_default"
                            } else {
                                "de_field"
                            };
                            let f = &f.name;
                            format!("{f}: ::serde::{helper}(fields, \"{f}\")?,")
                        })
                        .collect();
                    format!(
                        "\"{vname}\" => {{\n\
                             let fields = inner.as_object()\
                                 .ok_or_else(|| ::serde::DeError::expected(\"object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(\
                                     ::serde::DeError::unknown_variant(other)),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (key, inner) = &entries[0];\n\
                                 match key.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(\
                                         ::serde::DeError::unknown_variant(other)),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"enum representation\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse(input);
    gen_serialize(&shape)
        .parse()
        .expect("serde_derive stub: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse(input);
    gen_deserialize(&shape)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl parses")
}
