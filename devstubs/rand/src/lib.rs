//! Offline stand-in for `rand` 0.8.
//!
//! The sampling algorithms below are transcribed from rand 0.8.5 so that,
//! paired with the `rand_chacha` stand-in, every draw made by this
//! workspace is bit-identical to a build against the real crates:
//!
//! - `gen_range` over float ranges uses `UniformFloat::sample_single`
//!   (one raw draw, exponent overlay, `value1_2 * scale + (low - scale)`);
//! - `gen_range` over integer ranges uses `UniformInt::sample_single`
//!   (leading-zeros zone + widening-multiply rejection);
//! - `gen_bool` uses Bernoulli's `p_int` comparison against one `u64`;
//! - `SliceRandom::shuffle` uses the `u32` downcast of `gen_index`.

pub use rand_core::{CryptoRng, Error, RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

pub mod distributions {
    //! The subset of `rand::distributions` the workspace relies on.

    use super::RngCore;

    /// Types that can produce values of `T` from an RNG.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: full-range integers, `[0, 1)` floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 significant bits, multiply-based, [0, 1).
            let value = rng.next_u64() >> 11;
            value as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let value = rng.next_u32() >> 8;
            value as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            (rng.next_u32() as i32) < 0
        }
    }

    /// Errors from [`Bernoulli::new`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum BernoulliError {
        InvalidProbability,
    }

    const ALWAYS_TRUE: u64 = u64::MAX;
    const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

    /// The Bernoulli distribution, bit-compatible with rand 0.8.
    #[derive(Debug, Clone, Copy)]
    pub struct Bernoulli {
        p_int: u64,
    }

    impl Bernoulli {
        pub fn new(p: f64) -> Result<Bernoulli, BernoulliError> {
            if !(0.0..1.0).contains(&p) {
                if p == 1.0 {
                    return Ok(Bernoulli { p_int: ALWAYS_TRUE });
                }
                return Err(BernoulliError::InvalidProbability);
            }
            Ok(Bernoulli {
                p_int: (p * SCALE) as u64,
            })
        }
    }

    impl Distribution<bool> for Bernoulli {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            if self.p_int == ALWAYS_TRUE {
                return true;
            }
            rng.next_u64() < self.p_int
        }
    }
}

use distributions::{Bernoulli, Distribution, Standard};

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty(&self) -> bool;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let scale = self.end - self.start;
        // Value in [1, 2): 12 bits discarded, exponent forced to zero.
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | 0x3FF0_0000_0000_0000);
        value1_2 * scale + (self.start - scale)
    }
    #[inline]
    fn is_empty(&self) -> bool {
        !(self.start < self.end)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let scale = self.end - self.start;
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | 0x3F80_0000);
        value1_2 * scale + (self.start - scale)
    }
    #[inline]
    fn is_empty(&self) -> bool {
        !(self.start < self.end)
    }
}

macro_rules! int_range_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $next:ident, $product:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = self.end.wrapping_sub(self.start) as $unsigned as $u_large;
                // rand 0.8's conservative zone for >16-bit types.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let product = v as $product * range as $product;
                    let hi = (product >> (<$u_large>::BITS)) as $u_large;
                    let lo = product as $u_large;
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
            #[inline]
            fn is_empty(&self) -> bool {
                !(self.start < self.end)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low) as $unsigned as $u_large).wrapping_add(1);
                if range == 0 {
                    // Inclusive full-range: every draw is accepted.
                    return rng.$next() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let product = v as $product * range as $product;
                    let hi = (product >> (<$u_large>::BITS)) as $u_large;
                    let lo = product as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
            #[inline]
            fn is_empty(&self) -> bool {
                !(self.start() <= self.end())
            }
        }
    };
}

int_range_impl!(u32, u32, u32, next_u32, u64);
int_range_impl!(i32, u32, u32, next_u32, u64);
int_range_impl!(u64, u64, u64, next_u64, u128);
int_range_impl!(i64, u64, u64, next_u64, u128);
int_range_impl!(usize, usize, u64, next_u64, u128);
int_range_impl!(isize, usize, u64, next_u64, u128);

/// User-facing RNG extension trait (the rand 0.8 `Rng` API subset used in
/// this workspace).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        let d =
            Bernoulli::new(p).unwrap_or_else(|_| panic!("p={p} is outside range [0.0, 1.0]"));
        d.sample(self)
    }

    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Standard generators.

    use rand_core::{RngCore, SeedableRng};

    /// The standard RNG, ChaCha12 as in rand 0.8 with `std_rng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(rand_chacha::ChaCha12Rng);

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(rand_chacha::ChaCha12Rng::from_seed(seed))
        }
    }
}

pub mod seq {
    //! Sequence helpers (`SliceRandom` subset).

    use super::Rng;

    /// Index generation identical to rand 0.8 (note the `u32` downcast
    /// for bounds that fit, which changes which words are drawn).
    #[inline]
    fn gen_index<R: Rng + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= (u32::MAX as usize) {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Slice extensions.
    pub trait SliceRandom {
        type Item;

        fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
        where
            R: Rng + ?Sized;

        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R>(&self, rng: &mut R) -> Option<&T>
        where
            R: Rng + ?Sized,
        {
            if self.is_empty() {
                None
            } else {
                self.get(gen_index(rng, self.len()))
            }
        }

        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized,
        {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn float_range_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3.8..5.2);
            assert!((3.8..5.2).contains(&v));
        }
    }

    #[test]
    fn int_range_within_bounds_and_covers() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        seq::SliceRandom::shuffle(v.as_mut_slice(), &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
