//! Offline stand-in for `serde_json`, covering `to_string`,
//! `to_string_pretty`, and `from_str` over the stub `serde` value model.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the
/// `Result` mirrors the real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent, like the
/// real crate's default `PrettyFormatter`).
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error("trailing characters".to_string()));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), items.len(), indent, depth, |o, it, d| {
            write_value(o, it, indent, d)
        }, '[', ']'),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            |o, (k, val), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, val, indent, d);
            },
            '{',
            '}',
        ),
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, usize),
    open: char,
    close: char,
) where
    I: Iterator<Item = T>,
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // serde_json always marks floats as floats; Rust's Display drops ".0".
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert_eq!(to_string(&-2i64).unwrap(), "-2");
        assert_eq!(to_string(&650.0f64).unwrap(), "650.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        let v: f64 = from_str("650.0").unwrap();
        assert!((v - 650.0).abs() < 1e-12);
        let n: usize = from_str(" 42 ").unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![vec![1usize, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        let back: Vec<Vec<usize>> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let opt: Option<f64> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn pretty_output_shape() {
        let v = vec![1usize, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
