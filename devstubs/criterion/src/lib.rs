//! Offline stand-in for `criterion`: runs each benchmark closure a small
//! fixed number of times and prints the mean wall-clock per iteration.
//! No statistics, no reports — just enough to compile and smoke-run the
//! bench targets without the real crate.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    last_mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size,
        last_mean_ns: 0.0,
    };
    f(&mut b);
    println!("bench {label}: {:.0} ns/iter (stub harness)", b.last_mean_ns);
}

/// Group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 10, &mut f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
